// Package sched is the cluster-level scheduler: it tracks live machine
// membership, capacity and fault-domain labels, and resolves placement
// *requests* into machine names instead of relying on statically
// configured standbys. Every membership change and placement decision is
// an entry in a small replicated placement log — one leader, majority-ack
// followers exchanging messages over the transport layer — so decisions
// are agreed rather than guessed, and the scheduler itself survives
// machine crashes and recoveries.
//
// Placement follows the correlated-failure rule from Su & Zhou: a subjob's
// primary and standby copies must never share a fault domain, and among
// the eligible machines the scheduler prefers the least-occupied domain
// first, then the machine with the most free capacity.
package sched

import "sort"

// Role labels which side of a subjob a placement hosts.
type Role string

const (
	// RolePrimary is the active copy of a subjob.
	RolePrimary Role = "primary"
	// RoleStandby is the suspended (or checkpoint-holding) standby side.
	RoleStandby Role = "standby"
)

// Op enumerates placement-log entry kinds.
type Op string

const (
	// OpLeader is the no-op entry a freshly elected leader appends to
	// commit its term; replayed, it counts leader changes.
	OpLeader Op = "leader"
	// OpMemberUp admits a machine (or re-admits it after recovery) with a
	// fault-domain label and a slot capacity.
	OpMemberUp Op = "member-up"
	// OpMemberDown records a crash or removal: the machine stops being
	// schedulable and every slot it held is freed.
	OpMemberDown Op = "member-down"
	// OpDrain keeps a machine's existing slots but stops new placements.
	OpDrain Op = "drain"
	// OpPlace assigns one subjob role to a machine, freeing any previous
	// assignment of the same slot.
	OpPlace Op = "place"
	// OpRelease frees one subjob role's slot.
	OpRelease Op = "release"
	// OpReleaseJob frees every slot a subjob holds.
	OpReleaseJob Op = "release-job"
)

// Entry is one replicated placement-log record.
type Entry struct {
	Term     uint64 `json:"term"`
	Op       Op     `json:"op"`
	Machine  string `json:"machine,omitempty"`
	Domain   string `json:"domain,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	Subjob   string `json:"subjob,omitempty"`
	Role     Role   `json:"role,omitempty"`
}

// Member is one machine's schedulability state in a View.
type Member struct {
	ID       string `json:"id"`
	Domain   string `json:"domain"`
	Capacity int    `json:"capacity"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining"`
	Used     int    `json:"used"`
}

// View is the placement state obtained by replaying a log prefix: who is
// schedulable, and which machine each subjob role occupies. The log stays
// tiny (membership churn and placements, not data), so the state is always
// recomputed from scratch rather than applied incrementally.
type View struct {
	Members       map[string]*Member `json:"members"`
	Assignments   map[string]string  `json:"assignments"`
	Placements    int                `json:"placements"`
	LeaderChanges int                `json:"leader_changes"`
}

func slotKey(subjob string, role Role) string { return subjob + "/" + string(role) }

func replay(log []Entry) *View {
	v := &View{
		Members:     make(map[string]*Member),
		Assignments: make(map[string]string),
	}
	for i := range log {
		v.apply(&log[i])
	}
	return v
}

func (v *View) apply(e *Entry) {
	switch e.Op {
	case OpLeader:
		v.LeaderChanges++
	case OpMemberUp:
		m := v.Members[e.Machine]
		if m == nil {
			m = &Member{ID: e.Machine}
			v.Members[e.Machine] = m
		}
		m.Domain = e.Domain
		m.Capacity = e.Capacity
		m.Up = true
		m.Draining = false
	case OpMemberDown:
		m := v.Members[e.Machine]
		if m == nil {
			return
		}
		m.Up = false
		for k, id := range v.Assignments {
			if id == e.Machine {
				delete(v.Assignments, k)
				m.Used--
			}
		}
	case OpDrain:
		if m := v.Members[e.Machine]; m != nil {
			m.Draining = true
		}
	case OpPlace:
		m := v.Members[e.Machine]
		if m == nil {
			return
		}
		v.release(slotKey(e.Subjob, e.Role))
		v.Assignments[slotKey(e.Subjob, e.Role)] = e.Machine
		m.Used++
		v.Placements++
	case OpRelease:
		v.release(slotKey(e.Subjob, e.Role))
	case OpReleaseJob:
		v.release(slotKey(e.Subjob, RolePrimary))
		v.release(slotKey(e.Subjob, RoleStandby))
	}
}

func (v *View) release(key string) {
	old, ok := v.Assignments[key]
	if !ok {
		return
	}
	if m := v.Members[old]; m != nil {
		m.Used--
	}
	delete(v.Assignments, key)
}

func (v *View) domainUsed(domain string) int {
	used := 0
	for _, m := range v.Members {
		if m.Up && m.Domain == domain {
			used += m.Used
		}
	}
	return used
}

// Request asks the scheduler for a machine to host one subjob role.
// AvoidDomains carries the anti-affinity rule (a standby request names the
// primary's fault domain); AvoidMachines excludes individual hosts.
type Request struct {
	Subjob        string
	Role          Role
	AvoidDomains  []string
	AvoidMachines []string
}

// choose resolves req against v: the least-occupied eligible fault domain
// first, then the machine with the most free slots, ties broken by name so
// the decision is deterministic. Returns "" when no machine qualifies.
func choose(v *View, req Request) string {
	avoidDom := make(map[string]bool, len(req.AvoidDomains))
	for _, d := range req.AvoidDomains {
		avoidDom[d] = true
	}
	avoidM := make(map[string]bool, len(req.AvoidMachines))
	for _, id := range req.AvoidMachines {
		avoidM[id] = true
	}
	ids := make([]string, 0, len(v.Members))
	for id := range v.Members {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	best := ""
	bestDom, bestFree := 0, 0
	for _, id := range ids {
		m := v.Members[id]
		if !m.Up || m.Draining || m.Used >= m.Capacity || avoidM[id] || avoidDom[m.Domain] {
			continue
		}
		dom := v.domainUsed(m.Domain)
		free := m.Capacity - m.Used
		if best == "" || dom < bestDom || (dom == bestDom && free > bestFree) {
			best, bestDom, bestFree = id, dom, free
		}
	}
	return best
}
