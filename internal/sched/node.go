package sched

import (
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/transport"
)

// errNotLeader aborts a propose on a node that is not (or no longer) the
// leader; the scheduler client retries against the current leader.
var errNotLeader = errors.New("sched: not the leader")

type nodeRole int

const (
	roleFollower nodeRole = iota
	roleCandidate
	roleLeader
)

func (r nodeRole) String() string {
	switch r {
	case roleLeader:
		return "leader"
	case roleCandidate:
		return "candidate"
	default:
		return "follower"
	}
}

// wireMsg is the JSON payload of one placement-log protocol message,
// carried in a transport.Message's State field with Kind KindControl.
type wireMsg struct {
	Type string `json:"type"` // "vote-req", "vote-resp", "append", "append-resp"
	Term uint64 `json:"term"`
	From string `json:"from"`

	// vote-req: the candidate's log position; vote-resp: Granted.
	LastSeq  int    `json:"last_seq,omitempty"`
	LastTerm uint64 `json:"last_term,omitempty"`
	Granted  bool   `json:"granted,omitempty"`

	// append: the entries after the follower's first PrevSeq records, whose
	// last record must have term PrevTerm; append-resp: Ok plus Match, the
	// follower's replicated count on success or a conflict hint on refusal.
	PrevSeq  int     `json:"prev_seq,omitempty"`
	PrevTerm uint64  `json:"prev_term,omitempty"`
	Entries  []Entry `json:"entries,omitempty"`
	Commit   int     `json:"commit,omitempty"`
	Ok       bool    `json:"ok,omitempty"`
	Match    int     `json:"match,omitempty"`
}

func schedStream(group, node string) string { return "sched/" + group + "/" + node }

// Node is one placement-log replica, hosted on a cluster machine. Its
// term, vote and log model durable storage: they survive the machine's
// crash/restart cycle (the handler re-registers via an OnRestart hook), so
// a recovered replica rejoins with its history intact, catches up from the
// leader and counts toward the majority again.
type Node struct {
	id    string
	m     *machine.Machine
	clk   clock.Clock
	group string
	peers []string // all replica ids, including this one
	tick  time.Duration
	base  time.Duration // election timeout base
	rng   *rand.Rand    // guarded by mu; per-node jitter source

	mu        sync.Mutex
	role      nodeRole
	term      uint64
	votedFor  string
	log       []Entry
	commit    int
	leader    string
	lastHeard time.Time
	timeout   time.Duration
	votes     map[string]bool
	next      map[string]int // leader: count of entries to assume replicated
	match     map[string]int // leader: count of entries acked

	stop chan struct{}
	done chan struct{}
}

type outMsg struct {
	to  string
	msg wireMsg
}

func newNode(id string, m *machine.Machine, clk clock.Clock, group string, peers []string, tick, electBase time.Duration) *Node {
	seed := uint64(14695981039346656037)
	for _, b := range []byte(id) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	n := &Node{
		id:    id,
		m:     m,
		clk:   clk,
		group: group,
		peers: peers,
		tick:  tick,
		base:  electBase,
		rng:   rand.New(rand.NewSource(int64(seed))),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	n.lastHeard = clk.Now()
	n.timeout = n.drawTimeoutLocked()
	n.register()
	m.OnRestart(func() {
		n.register()
		n.mu.Lock()
		n.role = roleFollower
		n.votes = nil
		n.lastHeard = n.clk.Now()
		n.timeout = n.drawTimeoutLocked()
		n.mu.Unlock()
	})
	return n
}

func (n *Node) register() {
	n.m.RegisterStream(schedStream(n.group, n.id), n.onMessage)
}

// drawTimeoutLocked picks a fresh randomized election timeout; the jitter
// keeps replicas from splitting the vote forever.
func (n *Node) drawTimeoutLocked() time.Duration {
	return n.base + time.Duration(n.rng.Int63n(int64(n.base)))
}

func (n *Node) start() {
	go n.run()
}

func (n *Node) stopNode() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

func (n *Node) run() {
	defer close(n.done)
	t := n.clk.NewTicker(n.tick)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C():
			n.tickOnce()
		}
	}
}

func (n *Node) tickOnce() {
	now := n.clk.Now()
	if n.m.Crashed() {
		// Frozen: keep the election timer from firing the instant the
		// machine recovers.
		n.mu.Lock()
		n.lastHeard = now
		n.mu.Unlock()
		return
	}
	var out []outMsg
	n.mu.Lock()
	switch n.role {
	case roleLeader:
		out = n.appendsLocked()
	default:
		if now.Sub(n.lastHeard) >= n.timeout {
			out = n.electLocked(now)
		}
	}
	n.mu.Unlock()
	n.sendAll(out)
}

// electLocked starts a new election: bump the term, vote for self, solicit
// the rest. A single-replica group elects itself immediately.
func (n *Node) electLocked(now time.Time) []outMsg {
	n.term++
	n.role = roleCandidate
	n.votedFor = n.id
	n.votes = map[string]bool{n.id: true}
	n.lastHeard = now
	n.timeout = n.drawTimeoutLocked()
	if 2*len(n.votes) > len(n.peers) {
		return n.becomeLeaderLocked()
	}
	lastTerm := uint64(0)
	if len(n.log) > 0 {
		lastTerm = n.log[len(n.log)-1].Term
	}
	out := make([]outMsg, 0, len(n.peers)-1)
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		out = append(out, outMsg{p, wireMsg{
			Type: "vote-req", Term: n.term, From: n.id,
			LastSeq: len(n.log), LastTerm: lastTerm,
		}})
	}
	return out
}

func (n *Node) becomeLeaderLocked() []outMsg {
	n.role = roleLeader
	n.leader = n.id
	n.next = make(map[string]int, len(n.peers))
	n.match = make(map[string]int, len(n.peers))
	for _, p := range n.peers {
		n.next[p] = len(n.log)
	}
	// Committing an entry from the new term is the only way to learn the
	// commit point of inherited entries; the no-op doubles as the
	// leader-change record.
	n.log = append(n.log, Entry{Term: n.term, Op: OpLeader, Machine: n.id})
	n.advanceCommitLocked()
	return n.appendsLocked()
}

// appendsLocked builds one append (heartbeat + replication in one) per
// peer, resending everything past the peer's acked prefix.
func (n *Node) appendsLocked() []outMsg {
	out := make([]outMsg, 0, len(n.peers)-1)
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		prev := n.next[p]
		if prev > len(n.log) {
			prev = len(n.log)
		}
		prevTerm := uint64(0)
		if prev > 0 {
			prevTerm = n.log[prev-1].Term
		}
		out = append(out, outMsg{p, wireMsg{
			Type: "append", Term: n.term, From: n.id,
			PrevSeq: prev, PrevTerm: prevTerm,
			Entries: append([]Entry(nil), n.log[prev:]...),
			Commit:  n.commit,
		}})
	}
	return out
}

func (n *Node) sendAll(out []outMsg) {
	for _, o := range out {
		blob, err := json.Marshal(o.msg)
		if err != nil {
			continue
		}
		n.m.Send(transport.NodeID(o.to), transport.Message{
			Kind:   transport.KindControl,
			Stream: schedStream(n.group, o.to),
			State:  blob,
		})
	}
}

func (n *Node) onMessage(_ transport.NodeID, msg transport.Message) {
	var wm wireMsg
	if err := json.Unmarshal(msg.State, &wm); err != nil {
		return
	}
	now := n.clk.Now()
	var out []outMsg
	n.mu.Lock()
	switch wm.Type {
	case "vote-req":
		out = n.handleVoteReqLocked(&wm, now)
	case "vote-resp":
		out = n.handleVoteRespLocked(&wm)
	case "append":
		out = n.handleAppendLocked(&wm, now)
	case "append-resp":
		n.handleAppendRespLocked(&wm)
	}
	n.mu.Unlock()
	n.sendAll(out)
}

func (n *Node) stepDownLocked(term uint64) {
	if term > n.term {
		n.term = term
		n.votedFor = ""
	}
	n.role = roleFollower
	n.votes = nil
}

func (n *Node) handleVoteReqLocked(wm *wireMsg, now time.Time) []outMsg {
	if wm.Term > n.term {
		n.stepDownLocked(wm.Term)
	}
	granted := false
	if wm.Term == n.term && (n.votedFor == "" || n.votedFor == wm.From) {
		myLastTerm := uint64(0)
		if len(n.log) > 0 {
			myLastTerm = n.log[len(n.log)-1].Term
		}
		// Only a candidate whose log is at least as complete may win: this
		// is what guarantees committed placements survive leader changes.
		if wm.LastTerm > myLastTerm || (wm.LastTerm == myLastTerm && wm.LastSeq >= len(n.log)) {
			granted = true
			n.votedFor = wm.From
			n.lastHeard = now
		}
	}
	return []outMsg{{wm.From, wireMsg{Type: "vote-resp", Term: n.term, From: n.id, Granted: granted}}}
}

func (n *Node) handleVoteRespLocked(wm *wireMsg) []outMsg {
	if wm.Term > n.term {
		n.stepDownLocked(wm.Term)
		return nil
	}
	if n.role != roleCandidate || wm.Term != n.term || !wm.Granted {
		return nil
	}
	n.votes[wm.From] = true
	if 2*len(n.votes) > len(n.peers) {
		return n.becomeLeaderLocked()
	}
	return nil
}

func (n *Node) handleAppendLocked(wm *wireMsg, now time.Time) []outMsg {
	if wm.Term < n.term {
		return []outMsg{{wm.From, wireMsg{Type: "append-resp", Term: n.term, From: n.id, Ok: false}}}
	}
	if wm.Term > n.term {
		n.stepDownLocked(wm.Term)
	}
	n.role = roleFollower
	n.leader = wm.From
	n.lastHeard = now
	n.timeout = n.drawTimeoutLocked()

	if wm.PrevSeq > len(n.log) {
		// Missing records before the batch: hint the leader to back up to
		// our log length instead of probing one record at a time.
		return []outMsg{{wm.From, wireMsg{Type: "append-resp", Term: n.term, From: n.id, Ok: false, Match: len(n.log)}}}
	}
	if wm.PrevSeq > 0 && n.log[wm.PrevSeq-1].Term != wm.PrevTerm {
		return []outMsg{{wm.From, wireMsg{Type: "append-resp", Term: n.term, From: n.id, Ok: false, Match: wm.PrevSeq - 1}}}
	}
	// Truncate only at a real conflict; a stale duplicate append must not
	// roll back records appended since.
	for i := range wm.Entries {
		at := wm.PrevSeq + i
		if at < len(n.log) {
			if n.log[at].Term != wm.Entries[i].Term {
				n.log = append(n.log[:at], wm.Entries[i:]...)
				break
			}
			continue
		}
		n.log = append(n.log, wm.Entries[i:]...)
		break
	}
	matched := wm.PrevSeq + len(wm.Entries)
	if wm.Commit > n.commit {
		n.commit = wm.Commit
		if n.commit > len(n.log) {
			n.commit = len(n.log)
		}
	}
	return []outMsg{{wm.From, wireMsg{Type: "append-resp", Term: n.term, From: n.id, Ok: true, Match: matched}}}
}

func (n *Node) handleAppendRespLocked(wm *wireMsg) {
	if wm.Term > n.term {
		n.stepDownLocked(wm.Term)
		return
	}
	if n.role != roleLeader || wm.Term != n.term {
		return
	}
	if wm.Ok {
		if wm.Match > n.match[wm.From] {
			n.match[wm.From] = wm.Match
		}
		n.next[wm.From] = n.match[wm.From]
		n.advanceCommitLocked()
		return
	}
	nxt := n.next[wm.From] - 1
	if wm.Match < nxt {
		nxt = wm.Match
	}
	if nxt < 0 {
		nxt = 0
	}
	n.next[wm.From] = nxt
}

// advanceCommitLocked moves the commit point to the largest prefix a
// majority stores, restricted to entries from the current term.
func (n *Node) advanceCommitLocked() {
	for c := len(n.log); c > n.commit; c-- {
		if n.log[c-1].Term != n.term {
			break
		}
		acked := 1 // self
		for _, p := range n.peers {
			if p != n.id && n.match[p] >= c {
				acked++
			}
		}
		if 2*acked > len(n.peers) {
			n.commit = c
			return
		}
	}
}

// propose appends one entry built against the node's speculative view (all
// entries, committed or not — so back-to-back placements see each other).
// Returns the entry's position and term for commit tracking.
func (n *Node) propose(build func(v *View) (Entry, error)) (int, uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader || n.m.Crashed() {
		return 0, 0, errNotLeader
	}
	e, err := build(replay(n.log))
	if err != nil {
		return 0, 0, err
	}
	e.Term = n.term
	n.log = append(n.log, e)
	n.advanceCommitLocked()
	return len(n.log) - 1, n.term, nil
}

// waitCommitted blocks until the entry at (at, term) commits, is
// overwritten by a different term, or the timeout expires.
func (n *Node) waitCommitted(at int, term uint64, timeout time.Duration) bool {
	deadline := n.clk.Now().Add(timeout)
	for {
		n.mu.Lock()
		if at < len(n.log) && n.log[at].Term != term {
			n.mu.Unlock()
			return false
		}
		if n.commit > at {
			ok := n.log[at].Term == term
			n.mu.Unlock()
			return ok
		}
		n.mu.Unlock()
		if n.clk.Now().After(deadline) {
			return false
		}
		n.clk.Sleep(2 * time.Millisecond)
	}
}

// NodeStatus is one replica's introspection snapshot, for tests and the
// metrics registry.
type NodeStatus struct {
	ID     string `json:"id"`
	Role   string `json:"role"`
	Term   uint64 `json:"term"`
	LogLen int    `json:"log_len"`
	Commit int    `json:"commit"`
	Leader string `json:"leader"`
}

// Status returns the replica's current role, term and log position.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{
		ID: n.id, Role: n.role.String(), Term: n.term,
		LogLen: len(n.log), Commit: n.commit, Leader: n.leader,
	}
}

// CommittedView replays the replica's committed log prefix.
func (n *Node) CommittedView() *View {
	n.mu.Lock()
	prefix := append([]Entry(nil), n.log[:n.commit]...)
	n.mu.Unlock()
	return replay(prefix)
}

func (n *Node) isLeader() (bool, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader && !n.m.Crashed(), n.term
}
