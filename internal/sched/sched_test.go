package sched_test

import (
	"errors"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/sched"
	"streamha/internal/transport"
)

// testbed builds a scheduler over n replica machines on a fresh in-memory
// network with a short protocol cadence, plus the network for admitting
// worker machines.
func testbed(t *testing.T, n int) (*sched.Scheduler, *transport.Mem, clock.Clock) {
	t.Helper()
	clk := clock.New()
	net := transport.NewMem(transport.MemConfig{Clock: clk, Latency: 100 * time.Microsecond})
	var reps []*machine.Machine
	for i := 0; i < n; i++ {
		m, err := machine.New("sched-"+string(rune('a'+i)), clk, net)
		if err != nil {
			t.Fatalf("machine: %v", err)
		}
		reps = append(reps, m)
	}
	s, err := sched.New(sched.Config{
		Clock:           clk,
		Replicas:        reps,
		Tick:            5 * time.Millisecond,
		ElectionTimeout: 40 * time.Millisecond,
		ProposeTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	s.Start()
	t.Cleanup(s.Stop)
	t.Cleanup(net.Close)
	return s, net, clk
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPlacementSpreadsAcrossDomains(t *testing.T) {
	s, _, _ := testbed(t, 3)
	for id, dom := range map[string]string{"w1": "rack-a", "w2": "rack-a", "w3": "rack-b", "w4": "rack-b"} {
		if err := s.MemberUp(id, dom, 2); err != nil {
			t.Fatalf("MemberUp(%s): %v", id, err)
		}
	}

	pri, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary})
	if err != nil {
		t.Fatalf("place primary: %v", err)
	}
	if pri != "w1" {
		t.Fatalf("primary placed on %q, want deterministic w1", pri)
	}
	sec, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RoleStandby, AvoidDomains: []string{"rack-a"}, AvoidMachines: []string{pri}})
	if err != nil {
		t.Fatalf("place standby: %v", err)
	}
	if sec != "w3" {
		t.Fatalf("standby placed on %q, want w3 (other domain)", sec)
	}

	// Second subjob: same-domain spread prefers the emptier machine.
	pri2, err := s.Place(sched.Request{Subjob: "sj1", Role: sched.RolePrimary})
	if err != nil {
		t.Fatalf("place sj1 primary: %v", err)
	}
	if pri2 != "w2" {
		t.Fatalf("sj1 primary on %q, want w2 (most free in least-used domain)", pri2)
	}

	// Exhaust capacity, then expect a denial.
	for i := 0; i < 5; i++ {
		if _, err := s.Place(sched.Request{Subjob: "fill", Role: sched.Role(string(rune('0' + i)))}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := s.Place(sched.Request{Subjob: "over", Role: sched.RolePrimary}); !errors.Is(err, sched.ErrNoCapacity) {
		t.Fatalf("overcommit err = %v, want ErrNoCapacity", err)
	}
	if st := s.Stats(); st.Denials != 1 {
		t.Fatalf("denials = %d, want 1", st.Denials)
	}
}

func TestMemberDownFreesSlots(t *testing.T) {
	s, _, _ := testbed(t, 3)
	if err := s.MemberUp("w1", "rack-a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.MemberUp("w2", "rack-b", 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MemberDown(got); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Assignment("sj0", sched.RolePrimary); ok {
		t.Fatalf("assignment survived MemberDown")
	}
	// The slot is free again after the machine recovers.
	if err := s.MemberUp(got, "rack-a", 1); err != nil {
		t.Fatal(err)
	}
	re, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary, AvoidMachines: []string{"w2"}})
	if err != nil {
		t.Fatal(err)
	}
	if re != got {
		t.Fatalf("replacement on %q, want recovered %q", re, got)
	}
}

func TestDrainExcludesFromNewPlacements(t *testing.T) {
	s, _, _ := testbed(t, 1)
	if err := s.MemberUp("w1", "rack-a", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.MemberUp("w2", "rack-b", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("w2"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Place(sched.Request{Subjob: "sj1", Role: sched.RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	if got == "w2" {
		t.Fatalf("placement chose draining machine")
	}
	// Existing slots survive the drain.
	if _, ok := s.Assignment("sj0", sched.RolePrimary); !ok {
		t.Fatalf("drain dropped an existing assignment")
	}
}

func TestAssignAndRelease(t *testing.T) {
	s, _, _ := testbed(t, 1)
	if err := s.MemberUp("w1", "rack-a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign("sj0", sched.RolePrimary, "w1"); err != nil {
		t.Fatal(err)
	}
	if id, ok := s.Assignment("sj0", sched.RolePrimary); !ok || id != "w1" {
		t.Fatalf("assignment = %q,%v want w1,true", id, ok)
	}
	if err := s.Assign("sj0", sched.RoleStandby, "ghost"); !errors.Is(err, sched.ErrUnknownMember) {
		t.Fatalf("assign to unknown member err = %v, want ErrUnknownMember", err)
	}
	if err := s.ReleaseJob("sj0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Assignment("sj0", sched.RolePrimary); ok {
		t.Fatalf("assignment survived ReleaseJob")
	}
	// Slot is reusable.
	if _, err := s.Place(sched.Request{Subjob: "sj1", Role: sched.RolePrimary}); err != nil {
		t.Fatalf("place after release: %v", err)
	}
}
