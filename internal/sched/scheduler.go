package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/metrics"
)

// ErrNoCapacity is returned by Place when no schedulable machine satisfies
// the request (capacity exhausted, or anti-affinity excludes everything).
var ErrNoCapacity = errors.New("sched: no schedulable machine satisfies the request")

// ErrNoLeader is returned when no replica could commit the proposal within
// the propose timeout (majority down, or an election never settled).
var ErrNoLeader = errors.New("sched: placement log has no reachable leader")

// ErrUnknownMember rejects operations naming a machine the placement log
// has never admitted.
var ErrUnknownMember = errors.New("sched: machine is not a member")

// Config configures a scheduler.
type Config struct {
	// Clock is the shared time source; nil selects the wall clock.
	Clock clock.Clock
	// Replicas are the machines hosting the placement-log replicas. One
	// replica works (a single-machine "majority"); three tolerate one
	// crash, the usual deployment.
	Replicas []*machine.Machine
	// Group namespaces the replicas' streams; "sched" by default.
	Group string
	// Tick is the protocol heartbeat period (default 10ms); ElectionTimeout
	// is the base follower patience before standing for election (default
	// 80ms, jittered per replica); ProposeTimeout bounds how long a client
	// operation retries before giving up (default 3s).
	Tick            time.Duration
	ElectionTimeout time.Duration
	ProposeTimeout  time.Duration
}

// Scheduler is the client face of the placement log: membership updates
// and placement requests become proposed entries, acknowledged only once a
// majority of replicas stores them.
type Scheduler struct {
	cfg   Config
	nodes []*Node

	mu      sync.Mutex
	denials int
	started bool
}

// New creates a scheduler over the given replica machines.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("sched: need at least one replica machine")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.Group == "" {
		cfg.Group = "sched"
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 80 * time.Millisecond
	}
	if cfg.ProposeTimeout <= 0 {
		cfg.ProposeTimeout = 3 * time.Second
	}
	peers := make([]string, 0, len(cfg.Replicas))
	for _, m := range cfg.Replicas {
		peers = append(peers, string(m.ID()))
	}
	s := &Scheduler{cfg: cfg}
	for _, m := range cfg.Replicas {
		s.nodes = append(s.nodes, newNode(string(m.ID()), m, cfg.Clock, cfg.Group, peers, cfg.Tick, cfg.ElectionTimeout))
	}
	return s, nil
}

// Start launches the replicas' protocol loops.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for _, n := range s.nodes {
		n.start()
	}
}

// Stop halts the replicas.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	for _, n := range s.nodes {
		n.stopNode()
	}
}

// Nodes exposes the replicas, for tests.
func (s *Scheduler) Nodes() []*Node { return s.nodes }

// Replicas returns the machines hosting the placement-log replicas.
func (s *Scheduler) Replicas() []*machine.Machine { return s.cfg.Replicas }

// leaderNode returns the live replica claiming leadership at the highest
// term, or nil during elections.
func (s *Scheduler) leaderNode() *Node {
	var best *Node
	bestTerm := uint64(0)
	for _, n := range s.nodes {
		if ok, term := n.isLeader(); ok && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// propose runs build on the current leader and waits for the resulting
// entry to commit, retrying across leader changes until ProposeTimeout. A
// proposal that committed but whose ack was lost may be retried and
// duplicated in the log; every op is idempotent under replay, so this is
// safe.
func (s *Scheduler) propose(build func(v *View) (Entry, error)) error {
	deadline := s.cfg.Clock.Now().Add(s.cfg.ProposeTimeout)
	for {
		if ldr := s.leaderNode(); ldr != nil {
			at, term, err := ldr.propose(build)
			switch {
			case err == nil:
				if ldr.waitCommitted(at, term, 500*time.Millisecond) {
					return nil
				}
			case !errors.Is(err, errNotLeader):
				return err
			}
		}
		if s.cfg.Clock.Now().After(deadline) {
			return ErrNoLeader
		}
		s.cfg.Clock.Sleep(s.cfg.Tick)
	}
}

// MemberUp admits machine id (or re-admits it after recovery) in the given
// fault domain with capacity subjob-copy slots.
func (s *Scheduler) MemberUp(id, domain string, capacity int) error {
	return s.propose(func(*View) (Entry, error) {
		return Entry{Op: OpMemberUp, Machine: id, Domain: domain, Capacity: capacity}, nil
	})
}

// MemberDown records a crash or removal: id stops being schedulable and
// all its slots are freed.
func (s *Scheduler) MemberDown(id string) error {
	return s.propose(func(*View) (Entry, error) {
		return Entry{Op: OpMemberDown, Machine: id}, nil
	})
}

// Drain keeps id's current slots but excludes it from new placements.
func (s *Scheduler) Drain(id string) error {
	return s.propose(func(*View) (Entry, error) {
		return Entry{Op: OpDrain, Machine: id}, nil
	})
}

// Place resolves req to a machine name. The choice is made by the leader
// against its up-to-date view and recorded in the log, so concurrent
// placements never oversubscribe a machine. Denials count toward Stats.
func (s *Scheduler) Place(req Request) (string, error) {
	placed := ""
	err := s.propose(func(v *View) (Entry, error) {
		id := choose(v, req)
		if id == "" {
			return Entry{}, ErrNoCapacity
		}
		placed = id
		return Entry{Op: OpPlace, Machine: id, Subjob: req.Subjob, Role: req.Role}, nil
	})
	if err != nil {
		if errors.Is(err, ErrNoCapacity) {
			s.mu.Lock()
			s.denials++
			s.mu.Unlock()
		}
		return "", err
	}
	return placed, nil
}

// Assign records that subjob's role now occupies machine id — used when
// reality decides the host (a promotion moved the primary onto the old
// standby) and the log must follow.
func (s *Scheduler) Assign(subjob string, role Role, id string) error {
	return s.propose(func(v *View) (Entry, error) {
		if v.Members[id] == nil {
			return Entry{}, ErrUnknownMember
		}
		return Entry{Op: OpPlace, Machine: id, Subjob: subjob, Role: role}, nil
	})
}

// Release frees subjob's slot for one role.
func (s *Scheduler) Release(subjob string, role Role) error {
	return s.propose(func(*View) (Entry, error) {
		return Entry{Op: OpRelease, Subjob: subjob, Role: role}, nil
	})
}

// ReleaseJob frees every slot subjob holds.
func (s *Scheduler) ReleaseJob(subjob string) error {
	return s.propose(func(*View) (Entry, error) {
		return Entry{Op: OpReleaseJob, Subjob: subjob}, nil
	})
}

// View returns the committed placement state, read from the replica with
// the longest committed prefix.
func (s *Scheduler) View() *View {
	var best *Node
	bestCommit := -1
	for _, n := range s.nodes {
		if st := n.Status(); st.Commit > bestCommit {
			best, bestCommit = n, st.Commit
		}
	}
	if best == nil {
		return replay(nil)
	}
	return best.CommittedView()
}

// Assignment returns the committed host of subjob's role, if any.
func (s *Scheduler) Assignment(subjob string, role Role) (string, bool) {
	id, ok := s.View().Assignments[slotKey(subjob, role)]
	return id, ok
}

// Leader returns the current leader's machine id, or "".
func (s *Scheduler) Leader() string {
	if n := s.leaderNode(); n != nil {
		return n.id
	}
	return ""
}

// DomainStats aggregates occupancy for one fault domain.
type DomainStats struct {
	Machines int `json:"machines"`
	Up       int `json:"up"`
	Capacity int `json:"capacity"`
	Used     int `json:"used"`
}

// Stats is the scheduler snapshot exported through the metrics registry.
type Stats struct {
	Group         string                 `json:"group"`
	Leader        string                 `json:"leader"`
	Term          uint64                 `json:"term"`
	LogLen        int                    `json:"log_len"`
	Commit        int                    `json:"commit"`
	Members       int                    `json:"members"`
	MembersUp     int                    `json:"members_up"`
	Placements    int                    `json:"placements"`
	Denials       int                    `json:"denials"`
	LeaderChanges int                    `json:"leader_changes"`
	Domains       map[string]DomainStats `json:"domains"`
	Assignments   map[string]string      `json:"assignments"`
	Replicas      []NodeStatus           `json:"replicas"`
}

// Stats returns a snapshot of membership, occupancy and protocol health.
func (s *Scheduler) Stats() Stats {
	v := s.View()
	st := Stats{
		Group:         s.cfg.Group,
		Leader:        s.Leader(),
		Placements:    v.Placements,
		LeaderChanges: v.LeaderChanges,
		Domains:       make(map[string]DomainStats),
		Assignments:   v.Assignments,
	}
	ids := make([]string, 0, len(v.Members))
	for id := range v.Members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := v.Members[id]
		st.Members++
		d := st.Domains[m.Domain]
		d.Machines++
		if m.Up {
			st.MembersUp++
			d.Up++
			d.Capacity += m.Capacity
			d.Used += m.Used
		}
		st.Domains[m.Domain] = d
	}
	for _, n := range s.nodes {
		ns := n.Status()
		st.Replicas = append(st.Replicas, ns)
		if ns.ID == st.Leader {
			st.Term = ns.Term
			st.LogLen = ns.LogLen
			st.Commit = ns.Commit
		}
	}
	s.mu.Lock()
	st.Denials = s.denials
	s.mu.Unlock()
	return st
}

// RegisterMetrics exports the scheduler under the "sched" source.
func (s *Scheduler) RegisterMetrics(reg *metrics.Registry) {
	reg.Register("sched", func() any { return s.Stats() })
}
