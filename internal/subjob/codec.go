// Binary snapshot codec: the checkpoint-path counterpart of the transport
// package's wire codec. Snapshots and deltas are serialized in a single
// append pass into a buffer pre-sized by an exact length computation, so
// steady-state encoding into a recycled buffer performs no allocation.
//
// Layout (all integers LEB128 uvarints unless noted):
//
//	full snapshot   "SHS2" version subjobID consumed peStates pipes input output stateUnits
//	delta           "SHD2" version subjobID prevSeq consumed? peEntries pipeEntries input? output? stateUnits
//
// where strings and byte slices are length-prefixed, element batches are a
// count followed by the element package's fixed-width encoding, consumed
// maps are sorted by key for deterministic output, and the optional delta
// sections carry a leading presence/kind byte. The legacy gob encoding has
// no magic preamble and remains decodable (see DecodeSnapshot), keeping
// old checkpoint producers interoperable.
package subjob

import (
	"encoding/binary"
	"fmt"
	"sort"

	"streamha/internal/element"
	"streamha/internal/queue"
)

const (
	snapMagic    = "SHS2"
	deltaMagic   = "SHD2"
	codecVersion = 1
)

const (
	peAbsent = 0
	peDelta  = 1
	peFull   = 2
)

func hasMagic(b []byte, magic string) bool {
	return len(b) >= 4 && string(b[:4]) == magic
}

// IsDelta reports whether an encoded checkpoint payload is a delta.
func IsDelta(b []byte) bool { return hasMagic(b, deltaMagic) }

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func sizeBytes(b []byte) int  { return uvarintLen(uint64(len(b))) + len(b) }
func sizeString(s string) int { return uvarintLen(uint64(len(s))) + len(s) }
func sizeElems(n int) int     { return uvarintLen(uint64(n)) + n*element.EncodedSize }

func sizeConsumed(m map[string]uint64) int {
	n := uvarintLen(uint64(len(m)))
	for k, v := range m {
		n += sizeString(k) + uvarintLen(v)
	}
	return n
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendElems(dst []byte, elems []element.Element) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(elems)))
	return element.AppendBatch(dst, elems)
}

func appendConsumed(dst []byte, m map[string]uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	if len(m) == 0 {
		return dst
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = binary.AppendUvarint(dst, m[k])
	}
	return dst
}

// EncodedSize returns the exact byte length of the snapshot's binary
// encoding, letting callers size the destination buffer for a single
// allocation-free append pass.
func (s *Snapshot) EncodedSize() int {
	n := 4 + 1 + sizeString(s.SubjobID) + sizeConsumed(s.Consumed)
	n += uvarintLen(uint64(len(s.PEStates)))
	for _, st := range s.PEStates {
		n += sizeBytes(st)
	}
	n += uvarintLen(uint64(len(s.Pipes)))
	for _, p := range s.Pipes {
		n += sizeElems(len(p))
	}
	n += uvarintLen(uint64(len(s.Input)))
	for _, in := range s.Input {
		n += sizeString(in.Stream) + element.EncodedSize
	}
	n += sizeString(s.Output.StreamID) + uvarintLen(s.Output.Floor) + uvarintLen(s.Output.NextSeq)
	n += sizeElems(len(s.Output.Buf))
	n += uvarintLen(uint64(s.StateUnits))
	return n
}

// AppendTo appends the snapshot's binary encoding to dst and returns the
// extended slice. With a recycled buffer of sufficient capacity the encode
// allocates nothing.
func (s *Snapshot) AppendTo(dst []byte) []byte {
	dst = append(dst, snapMagic...)
	dst = append(dst, codecVersion)
	dst = appendString(dst, s.SubjobID)
	dst = appendConsumed(dst, s.Consumed)
	dst = binary.AppendUvarint(dst, uint64(len(s.PEStates)))
	for _, st := range s.PEStates {
		dst = appendBytes(dst, st)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Pipes)))
	for _, p := range s.Pipes {
		dst = appendElems(dst, p)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Input)))
	for _, in := range s.Input {
		dst = appendString(dst, in.Stream)
		dst = in.Elem.AppendEncode(dst)
	}
	dst = appendString(dst, s.Output.StreamID)
	dst = binary.AppendUvarint(dst, s.Output.Floor)
	dst = binary.AppendUvarint(dst, s.Output.NextSeq)
	dst = appendElems(dst, s.Output.Buf)
	return binary.AppendUvarint(dst, uint64(s.StateUnits))
}

// EncodedSize returns the exact byte length of the delta's binary encoding.
func (d *Delta) EncodedSize() int {
	n := 4 + 1 + sizeString(d.SubjobID) + uvarintLen(d.PrevSeq)
	n++ // consumed presence flag
	if d.Consumed != nil {
		n += sizeConsumed(d.Consumed)
	}
	n += uvarintLen(uint64(len(d.PEDeltas)))
	for i := range d.PEDeltas {
		n++ // kind byte
		switch {
		case d.PEFull[i] != nil:
			n += sizeBytes(d.PEFull[i])
		case d.PEDeltas[i] != nil:
			n += sizeBytes(d.PEDeltas[i])
		}
	}
	n += uvarintLen(uint64(len(d.Pipes)))
	for i, p := range d.Pipes {
		n++ // presence byte
		if d.PipeSet[i] {
			n += sizeElems(len(p))
		}
	}
	n++ // input presence flag
	if d.HasInput {
		n += uvarintLen(uint64(len(d.Input)))
		for _, in := range d.Input {
			n += sizeString(in.Stream) + element.EncodedSize
		}
	}
	n++ // output presence flag
	if d.HasOutput {
		n += sizeString(d.Output.StreamID) + uvarintLen(d.Output.Floor) +
			uvarintLen(d.Output.NextSeq) + uvarintLen(d.Output.FromSeq) + sizeElems(len(d.Output.New))
	}
	return n + uvarintLen(uint64(d.StateUnits))
}

// AppendTo appends the delta's binary encoding to dst and returns the
// extended slice.
func (d *Delta) AppendTo(dst []byte) []byte {
	dst = append(dst, deltaMagic...)
	dst = append(dst, codecVersion)
	dst = appendString(dst, d.SubjobID)
	dst = binary.AppendUvarint(dst, d.PrevSeq)
	if d.Consumed != nil {
		dst = append(dst, 1)
		dst = appendConsumed(dst, d.Consumed)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.PEDeltas)))
	for i := range d.PEDeltas {
		switch {
		case d.PEFull[i] != nil:
			dst = append(dst, peFull)
			dst = appendBytes(dst, d.PEFull[i])
		case d.PEDeltas[i] != nil:
			dst = append(dst, peDelta)
			dst = appendBytes(dst, d.PEDeltas[i])
		default:
			dst = append(dst, peAbsent)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Pipes)))
	for i, p := range d.Pipes {
		if d.PipeSet[i] {
			dst = append(dst, 1)
			dst = appendElems(dst, p)
		} else {
			dst = append(dst, 0)
		}
	}
	if d.HasInput {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(d.Input)))
		for _, in := range d.Input {
			dst = appendString(dst, in.Stream)
			dst = in.Elem.AppendEncode(dst)
		}
	} else {
		dst = append(dst, 0)
	}
	if d.HasOutput {
		dst = append(dst, 1)
		dst = appendString(dst, d.Output.StreamID)
		dst = binary.AppendUvarint(dst, d.Output.Floor)
		dst = binary.AppendUvarint(dst, d.Output.NextSeq)
		dst = binary.AppendUvarint(dst, d.Output.FromSeq)
		dst = appendElems(dst, d.Output.New)
	} else {
		dst = append(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(d.StateUnits))
}

// Encode serializes the delta; the returned slice is freshly allocated at
// its exact size and owned by the caller.
func (d *Delta) Encode() ([]byte, error) {
	return d.AppendTo(make([]byte, 0, d.EncodedSize())), nil
}

// creader is a sticky-error cursor over an encoded checkpoint, in the
// style of the transport codec's payload reader: after the first framing
// error every subsequent read is a no-op and the error surfaces once.
type creader struct {
	b   []byte
	err error
}

func (r *creader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("subjob: "+format, args...)
	}
}

func (r *creader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *creader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated flag byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *creader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail("field wants %d bytes, %d left", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *creader) str() string { return string(r.take(r.uvarint())) }

func (r *creader) bytes() []byte {
	n := r.uvarint()
	if n == 0 {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *creader) consumed() map[string]uint64 {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.str()
		m[k] = r.uvarint()
	}
	return m
}

func (r *creader) elems() []element.Element {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	out, rest, err := element.DecodeBatch(nil, r.b, int(n))
	if err != nil {
		r.fail("element batch: %v", err)
		return nil
	}
	r.b = rest
	return out
}

func (r *creader) input() []queue.In {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]queue.In, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		stream := r.str()
		raw := r.take(element.EncodedSize)
		if r.err != nil {
			break
		}
		e, err := element.Decode(raw)
		if err != nil {
			r.fail("input element: %v", err)
			break
		}
		out = append(out, queue.In{Stream: stream, Elem: e})
	}
	return out
}

func (r *creader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("subjob: %d trailing bytes after %s", len(r.b), what)
	}
	return nil
}

func decodeSnapshotBinary(b []byte) (*Snapshot, error) {
	r := &creader{b: b[4:]}
	if v := r.byte(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("subjob: unknown snapshot codec version %d", v)
	}
	s := &Snapshot{}
	s.SubjobID = r.str()
	s.Consumed = r.consumed()
	if n := r.uvarint(); n > 0 && r.err == nil {
		s.PEStates = make([][]byte, n)
		for i := range s.PEStates {
			s.PEStates[i] = r.bytes()
		}
	}
	if n := r.uvarint(); n > 0 && r.err == nil {
		s.Pipes = make([][]element.Element, n)
		for i := range s.Pipes {
			s.Pipes[i] = r.elems()
		}
	}
	s.Input = r.input()
	s.Output.StreamID = r.str()
	s.Output.Floor = r.uvarint()
	s.Output.NextSeq = r.uvarint()
	s.Output.Buf = r.elems()
	s.StateUnits = int(r.uvarint())
	if err := r.done("snapshot"); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeDelta parses an encoded delta checkpoint.
func DecodeDelta(b []byte) (*Delta, error) {
	if !hasMagic(b, deltaMagic) {
		return nil, fmt.Errorf("subjob: not a delta checkpoint")
	}
	r := &creader{b: b[4:]}
	if v := r.byte(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("subjob: unknown delta codec version %d", v)
	}
	d := &Delta{}
	d.SubjobID = r.str()
	d.PrevSeq = r.uvarint()
	if r.byte() == 1 {
		d.Consumed = r.consumed()
		if d.Consumed == nil && r.err == nil {
			d.Consumed = map[string]uint64{}
		}
	}
	nPE := r.uvarint()
	if r.err == nil {
		d.PEDeltas = make([][]byte, nPE)
		d.PEFull = make([][]byte, nPE)
		for i := uint64(0); i < nPE && r.err == nil; i++ {
			switch kind := r.byte(); kind {
			case peAbsent:
			case peDelta:
				d.PEDeltas[i] = r.bytes()
			case peFull:
				b := r.bytes()
				if b == nil {
					b = []byte{}
				}
				d.PEFull[i] = b
			default:
				r.fail("unknown PE entry kind %d", kind)
			}
		}
	}
	nPipes := r.uvarint()
	if r.err == nil {
		d.Pipes = make([][]element.Element, nPipes)
		d.PipeSet = make([]bool, nPipes)
		for i := uint64(0); i < nPipes && r.err == nil; i++ {
			if r.byte() == 1 {
				d.PipeSet[i] = true
				d.Pipes[i] = r.elems()
			}
		}
	}
	if r.byte() == 1 {
		d.HasInput = true
		d.Input = r.input()
	}
	if r.byte() == 1 {
		d.HasOutput = true
		d.Output.StreamID = r.str()
		d.Output.Floor = r.uvarint()
		d.Output.NextSeq = r.uvarint()
		d.Output.FromSeq = r.uvarint()
		d.Output.New = r.elems()
	}
	d.StateUnits = int(r.uvarint())
	if err := r.done("delta"); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeCheckpoint parses an encoded checkpoint payload of either kind:
// exactly one of the returned snapshot and delta is non-nil on success.
// Partial (bounded-error) frames are not valid here: they never enter the
// store fold or the durable catalog, so reaching one is a routing bug.
func DecodeCheckpoint(b []byte) (*Snapshot, *Delta, error) {
	if IsPartial(b) {
		return nil, nil, fmt.Errorf("subjob: partial checkpoint where full/delta expected (partial frames are not foldable)")
	}
	if IsDelta(b) {
		d, err := DecodeDelta(b)
		return nil, d, err
	}
	s, err := DecodeSnapshot(b)
	return s, nil, err
}

// CheckpointInfo describes an encoded checkpoint payload: enough to index
// and chain it without decoding the state sections.
type CheckpointInfo struct {
	SubjobID string
	IsDelta  bool
	// IsPartial marks a bounded-error frame (SHP2); such payloads are
	// transport-only and never stored.
	IsPartial bool
	// PrevSeq is the chain predecessor; meaningful only for deltas.
	PrevSeq uint64
}

// PeekCheckpoint reads a checkpoint payload's header — subjob identity,
// kind, and (for deltas) the chain predecessor. Binary payloads cost only
// a few header bytes; legacy gob payloads fall back to a full decode.
func PeekCheckpoint(b []byte) (CheckpointInfo, error) {
	switch {
	case hasMagic(b, snapMagic):
		r := &creader{b: b[4:]}
		if v := r.byte(); r.err == nil && v != codecVersion {
			return CheckpointInfo{}, fmt.Errorf("subjob: unknown snapshot codec version %d", v)
		}
		id := r.str()
		if r.err != nil {
			return CheckpointInfo{}, r.err
		}
		return CheckpointInfo{SubjobID: id}, nil
	case hasMagic(b, deltaMagic):
		r := &creader{b: b[4:]}
		if v := r.byte(); r.err == nil && v != codecVersion {
			return CheckpointInfo{}, fmt.Errorf("subjob: unknown delta codec version %d", v)
		}
		id := r.str()
		prev := r.uvarint()
		if r.err != nil {
			return CheckpointInfo{}, r.err
		}
		return CheckpointInfo{SubjobID: id, IsDelta: true, PrevSeq: prev}, nil
	case hasMagic(b, partialMagic):
		r := &creader{b: b[4:]}
		if v := r.byte(); r.err == nil && v != codecVersion {
			return CheckpointInfo{}, fmt.Errorf("subjob: unknown partial codec version %d", v)
		}
		id := r.str()
		if r.err != nil {
			return CheckpointInfo{}, r.err
		}
		return CheckpointInfo{SubjobID: id, IsPartial: true}, nil
	default:
		snap, delta, err := DecodeCheckpoint(b)
		if err != nil {
			return CheckpointInfo{}, err
		}
		if delta != nil {
			return CheckpointInfo{SubjobID: delta.SubjobID, IsDelta: true, PrevSeq: delta.PrevSeq}, nil
		}
		return CheckpointInfo{SubjobID: snap.SubjobID}, nil
	}
}
