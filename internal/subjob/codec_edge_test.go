package subjob

import (
	"bytes"
	"strings"
	"testing"
)

// TestCodecAutoDetectEdgeCases pins the codec's format sniffing on the
// degenerate payloads where a length- or content-based heuristic would
// misroute: empty and zero-PE checkpoints (whose binary encoding is
// little more than the magic preamble), truncated preambles, and
// single-byte payloads. Detection is a strict 4-byte prefix match, so
// every case must either decode through the binary path or fail cleanly
// — never panic, and never fall through to gob for a binary payload.
func TestCodecAutoDetectEdgeCases(t *testing.T) {
	emptySnap := &Snapshot{SubjobID: "j/empty"}
	emptySnapBin, err := emptySnap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	emptySnapGob, err := emptySnap.EncodeGob()
	if err != nil {
		t.Fatal(err)
	}
	emptyDelta := &Delta{SubjobID: "j/empty", PrevSeq: 7}
	emptyDeltaBin, err := emptyDelta.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		payload []byte
		// wantSnap / wantDelta: decodes successfully through
		// DecodeCheckpoint as that kind. Both false: must error.
		wantSnap  bool
		wantDelta bool
	}{
		{"empty snapshot binary", emptySnapBin, true, false},
		{"empty snapshot gob", emptySnapGob, true, false},
		{"empty delta binary", emptyDeltaBin, false, true},
		{"nil payload", nil, false, false},
		{"empty payload", []byte{}, false, false},
		{"single zero byte", []byte{0}, false, false},
		{"single letter S", []byte("S"), false, false},
		{"truncated snap magic", []byte("SHS"), false, false},
		{"truncated delta magic", []byte("SHD"), false, false},
		{"bare snap magic", []byte("SHS2"), false, false},
		{"bare delta magic", []byte("SHD2"), false, false},
		{"snap magic bad version", append([]byte("SHS2"), 0xFF), false, false},
		{"delta magic bad version", append([]byte("SHD2"), 0xFF), false, false},
		{"snap magic truncated body", append([]byte("SHS2"), 1, 30), false, false},
		{"near-magic garbage", []byte("SHS3garbage"), false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, delta, err := DecodeCheckpoint(tc.payload)
			switch {
			case tc.wantSnap:
				if err != nil || snap == nil || delta != nil {
					t.Fatalf("DecodeCheckpoint = (%v, %v, %v), want snapshot", snap, delta, err)
				}
			case tc.wantDelta:
				if err != nil || delta == nil || snap != nil {
					t.Fatalf("DecodeCheckpoint = (%v, %v, %v), want delta", snap, delta, err)
				}
			default:
				if err == nil {
					t.Fatalf("DecodeCheckpoint accepted %q", tc.payload)
				}
			}

			// The single-kind decoders and the header peek must agree
			// with the router — and none of them may panic.
			_, snapErr := DecodeSnapshot(tc.payload)
			if tc.wantSnap != (snapErr == nil) {
				t.Fatalf("DecodeSnapshot err = %v, want success=%v", snapErr, tc.wantSnap)
			}
			_, deltaErr := DecodeDelta(tc.payload)
			if tc.wantDelta != (deltaErr == nil) {
				t.Fatalf("DecodeDelta err = %v, want success=%v", deltaErr, tc.wantDelta)
			}
			info, peekErr := PeekCheckpoint(tc.payload)
			if (tc.wantSnap || tc.wantDelta) != (peekErr == nil) {
				t.Fatalf("PeekCheckpoint err = %v", peekErr)
			}
			if peekErr == nil {
				if info.SubjobID != "j/empty" || info.IsDelta != tc.wantDelta {
					t.Fatalf("PeekCheckpoint = %+v", info)
				}
				if tc.wantDelta && info.PrevSeq != 7 {
					t.Fatalf("PeekCheckpoint prev = %d, want 7", info.PrevSeq)
				}
			}
		})
	}
}

// TestCodecEmptySnapshotBinaryRouting is the regression distilled: a
// zero-PE snapshot's binary encoding is only a few bytes longer than the
// preamble, and it must round-trip through the binary decoder rather
// than being misdetected as legacy gob (which would reject it with an
// opaque gob error).
func TestCodecEmptySnapshotBinaryRouting(t *testing.T) {
	s := &Snapshot{SubjobID: "j/z"}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, []byte("SHS2")) {
		t.Fatalf("binary snapshot missing magic: %q", enc)
	}
	if IsDelta(enc) {
		t.Fatal("snapshot detected as delta")
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("empty binary snapshot misrouted: %v", err)
	}
	if got.SubjobID != "j/z" || len(got.PEStates) != 0 || got.ElementUnits() != 0 {
		t.Fatalf("round trip mutated empty snapshot: %+v", got)
	}
	reenc, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatal("empty snapshot round trip diverged")
	}

	// The same payload with its magic clipped must NOT silently decode
	// as gob to a zero snapshot — it has to be an explicit error.
	if _, err := DecodeSnapshot(enc[1:]); err == nil {
		t.Fatal("clipped binary payload accepted via gob fallback")
	}
}

// TestCodecVersionErrorsAreDiagnosable: a future-version payload must be
// rejected with an error naming the version, not a generic parse
// failure, so operators can tell a format skew from corruption.
func TestCodecVersionErrorsAreDiagnosable(t *testing.T) {
	for _, magic := range []string{"SHS2", "SHD2"} {
		payload := append([]byte(magic), 9)
		_, _, err := DecodeCheckpoint(payload)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("%s version-9 payload: err = %v, want version error", magic, err)
		}
	}
}
