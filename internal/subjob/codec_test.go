package subjob

import (
	"bytes"
	"testing"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/transport"
)

// codecFeeder reuses one feeder machine across sends — the shared feed()
// helper registers a new node per call and can only be used once per test.
type codecFeeder struct {
	m  *machine.Machine
	to transport.NodeID
	sj string
}

func newCodecFeeder(t *testing.T, net *transport.Mem, to transport.NodeID, sj string) *codecFeeder {
	t.Helper()
	m, err := machine.New("codec-feeder-"+string(to)+sj, clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	return &codecFeeder{m: m, to: to, sj: sj}
}

func (f *codecFeeder) send(from, toSeq uint64) {
	batch := make([]element.Element, 0, toSeq-from+1)
	for s := from; s <= toSeq; s++ {
		batch = append(batch, element.Element{ID: s, Seq: s, Payload: int64(s)})
	}
	f.m.Send(f.to, transport.Message{
		Kind:     transport.KindData,
		Stream:   DataStream(f.sj, "in"),
		Elements: batch,
	})
}

// deltaSpec is testSpec with keyed pad state, so CounterLogic produces
// real incremental patches instead of full-state fallbacks.
func deltaSpec(id string) Spec {
	s := testSpec(id)
	for i := range s.PEs {
		s.PEs[i].NewLogic = func() pe.Logic { return &pe.CounterLogic{Pad: 8, HotSlots: 16} }
	}
	return s
}

func deltaRuntime(t *testing.T, suspended bool) (*Runtime, *machine.Machine, *transport.Mem) {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	m, err := machine.New("m1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(deltaSpec("j/sj"), m, suspended)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, m, net
}

// snapBytes canonicalizes a snapshot through the deterministic binary
// codec, so byte equality is deep equality.
func snapBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 12)
	waitProcessed(t, rt, 12)

	var snap *Snapshot
	rt.WithPaused(func() {
		snap = rt.CaptureFull()
		snap.Input = rt.In().SnapshotBuf()
	})
	enc := snapBytes(t, snap)
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBytes(t, got), enc) {
		t.Fatal("binary round trip diverged")
	}
	if got.SubjobID != "j/sj" || got.Consumed["in"] != 12 {
		t.Fatalf("decoded header: id=%q consumed=%v", got.SubjobID, got.Consumed)
	}
}

func TestGobFallbackDecode(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 5)
	waitProcessed(t, rt, 5)
	snap := rt.Snapshot()

	legacy, err := snap.EncodeGob()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(legacy)
	if err != nil {
		t.Fatalf("legacy gob checkpoint rejected: %v", err)
	}
	if !bytes.Equal(snapBytes(t, got), snapBytes(t, snap)) {
		t.Fatal("gob fallback decoded different state")
	}
}

func TestDecodeRejectsGarbageAndKindMixups(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("SHS2")); err == nil {
		t.Fatal("truncated binary snapshot accepted")
	}
	if _, err := DecodeDelta([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage delta accepted")
	}

	rt, _, _ := deltaRuntime(t, false)
	rt.WithPaused(func() { rt.CaptureFull() })
	var d *Delta
	rt.WithPaused(func() { d, _ = rt.CaptureDelta(DeltaOptions{OutputSince: 1, IncludeOutput: true, OnlyPE: -1}) })
	if d == nil {
		t.Fatal("no delta")
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !IsDelta(enc) {
		t.Fatal("encoded delta not recognized")
	}
	if _, err := DecodeSnapshot(enc); err == nil {
		t.Fatal("delta accepted as a full snapshot")
	}
	snap, delta, err := DecodeCheckpoint(enc)
	if err != nil || snap != nil || delta == nil {
		t.Fatalf("DecodeCheckpoint(delta) = (%v, %v, %v)", snap, delta, err)
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	f := newCodecFeeder(t, net, "m1", "j/sj")
	f.send(1, 8)
	waitProcessed(t, rt, 8)
	var base *Snapshot
	rt.WithPaused(func() { base = rt.CaptureFull() })

	f.send(9, 14)
	waitProcessed(t, rt, 14)
	var d *Delta
	rt.WithPaused(func() {
		d, _ = rt.CaptureDelta(DeltaOptions{
			OutputSince:   base.Output.NextSeq,
			IncludeOutput: true,
			IncludeInput:  true,
			OnlyPE:        -1,
		})
	})
	if d == nil {
		t.Fatal("no delta")
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("delta round trip diverged")
	}
	if got.SubjobID != "j/sj" || got.Consumed["in"] != 14 {
		t.Fatalf("decoded delta header: id=%q consumed=%v", got.SubjobID, got.Consumed)
	}
}

// TestSnapshotFoldEquivalence: folding captured deltas into the base
// snapshot yields the same bytes as a fresh full capture — the invariant
// the checkpoint store's folding relies on.
func TestSnapshotFoldEquivalence(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	f := newCodecFeeder(t, net, "m1", "j/sj")
	f.send(1, 10)
	waitProcessed(t, rt, 10)

	var folded *Snapshot
	rt.WithPaused(func() { folded = rt.CaptureFull() })
	last := folded.Output.NextSeq

	next := uint64(11)
	for round := 0; round < 3; round++ {
		f.send(next, next+6)
		waitProcessed(t, rt, next+6)
		next += 7

		var d *Delta
		var full *Snapshot
		rt.WithPaused(func() {
			d, _ = rt.CaptureDelta(DeltaOptions{OutputSince: last, IncludeOutput: true, OnlyPE: -1})
			full = rt.Snapshot()
		})
		if d == nil {
			t.Fatalf("round %d: no delta", round)
		}
		// Route through the codec so the fold sees exactly what a store sees.
		enc, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := DecodeDelta(enc)
		if err != nil {
			t.Fatal(err)
		}
		if err := folded.ApplyDelta(d2); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		last = d.Output.NextSeq

		if !bytes.Equal(snapBytes(t, folded), snapBytes(t, full)) {
			t.Fatalf("round %d: folded snapshot != full snapshot", round)
		}
	}
}

// TestRuntimeApplyDeltaEquivalence: a standby runtime kept fresh by
// Restore(full) + ApplyDelta(...) holds the same state as one restored
// from the final full snapshot.
func TestRuntimeApplyDeltaEquivalence(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	standbyNet := transport.NewMem(transport.MemConfig{})
	t.Cleanup(standbyNet.Close)
	sm, err := machine.New("m2", clock.New(), standbyNet)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := New(deltaSpec("j/sj"), sm, true)
	if err != nil {
		t.Fatal(err)
	}
	standby.Start()
	t.Cleanup(standby.Stop)

	f := newCodecFeeder(t, net, "m1", "j/sj")
	f.send(1, 9)
	waitProcessed(t, rt, 9)
	var base *Snapshot
	rt.WithPaused(func() { base = rt.CaptureFull() })
	if err := standby.Restore(base); err != nil {
		t.Fatal(err)
	}
	last := base.Output.NextSeq

	f.send(10, 21)
	waitProcessed(t, rt, 21)
	var d *Delta
	var final *Snapshot
	rt.WithPaused(func() {
		d, _ = rt.CaptureDelta(DeltaOptions{OutputSince: last, IncludeOutput: true, OnlyPE: -1})
		final = rt.Snapshot()
	})
	if d == nil {
		t.Fatal("no delta")
	}
	if err := standby.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBytes(t, standby.Snapshot()), snapBytes(t, final)) {
		t.Fatal("standby state != primary state after delta apply")
	}

	// A non-chaining delta must be rejected, leaving an error the caller
	// can use to force a full rebase.
	if err := standby.ApplyDelta(d); err == nil {
		t.Fatal("replayed delta accepted by runtime")
	}
}

func TestSnapshotClone(t *testing.T) {
	rt, _, net := deltaRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 6)
	waitProcessed(t, rt, 6)
	snap := rt.Snapshot()
	c := snap.Clone()
	if !bytes.Equal(snapBytes(t, c), snapBytes(t, snap)) {
		t.Fatal("clone differs")
	}
	if len(snap.PEStates[0]) > 0 {
		c.PEStates[0][0] ^= 0xFF
		if bytes.Equal(snapBytes(t, c), snapBytes(t, snap)) {
			t.Fatal("clone shares PE state backing array")
		}
	}
}
