package subjob

import (
	"fmt"

	"streamha/internal/element"
	"streamha/internal/pe"
	"streamha/internal/queue"
)

// Delta is an incremental checkpoint: the changes of one subjob copy since
// the immediately preceding checkpoint in the same chain. PE state travels
// as byte-range patches (see pe.DeltaSnapshot) with a per-PE full-snapshot
// fallback, the output queue as an OutputDelta carrying only newly
// published elements, and pipes/input — which are small, bounded queues —
// as whole replacements guarded by presence flags so the individual
// variant can ship a single PE's share.
//
// A delta is only meaningful relative to the checkpoint whose sequence
// number equals PrevSeq: the store folds an unbroken chain of deltas into
// its retained full image and must drop (without acknowledging) any delta
// whose predecessor it never stored.
type Delta struct {
	SubjobID string
	// PrevSeq is the checkpoint sequence number this delta chains onto.
	PrevSeq uint64
	// Consumed is the first PE's consumption positions at capture time (or
	// the input-queue accept positions for variants that include the input
	// queue); nil leaves the folded snapshot's positions unchanged.
	Consumed map[string]uint64
	// PEDeltas[i] is PE i's state patch; nil when the PE is absent from
	// this delta or shipped in full instead.
	PEDeltas [][]byte
	// PEFull[i] is PE i's full state, the fallback when the logic cannot
	// produce a delta (no baseline after a restore, or not a DeltaLogic).
	PEFull [][]byte
	// Pipes[i] replaces pipe i's content when PipeSet[i] is true.
	Pipes   [][]element.Element
	PipeSet []bool
	// Input replaces the input-queue content when HasInput is true.
	Input    []queue.In
	HasInput bool
	// Output advances the output queue when HasOutput is true.
	Output    queue.OutputDelta
	HasOutput bool
	// StateUnits is the shipped internal-state size in element-equivalents
	// (patch bytes rounded up to elements, plus full fallbacks).
	StateUnits int
}

// ElementUnits returns the delta's shipped size in data-element
// equivalents, the accounting unit of the paper's overhead figures.
func (d *Delta) ElementUnits() int {
	n := d.StateUnits + len(d.Input)
	if d.HasOutput {
		n += len(d.Output.New)
	}
	for i, p := range d.Pipes {
		if i < len(d.PipeSet) && d.PipeSet[i] {
			n += len(p)
		}
	}
	return n
}

// ApplyDelta folds a delta into a full snapshot image in place: patched PE
// states, replaced pipes/input, and an advanced output window. The
// snapshot takes ownership of the delta's slices. Chain validity (PrevSeq)
// is the caller's responsibility; shape mismatches and non-contiguous
// output deltas fail without guaranteeing an unmodified snapshot, so
// callers must discard the image on error.
func (s *Snapshot) ApplyDelta(d *Delta) error {
	if d.SubjobID != s.SubjobID {
		return fmt.Errorf("subjob: delta for %q folded into snapshot of %q", d.SubjobID, s.SubjobID)
	}
	if len(d.PEDeltas) != len(s.PEStates) || len(d.PEFull) != len(s.PEStates) {
		return fmt.Errorf("subjob: delta covers %d PEs, snapshot has %d", len(d.PEDeltas), len(s.PEStates))
	}
	if len(d.Pipes) != len(s.Pipes) || len(d.PipeSet) != len(s.Pipes) {
		return fmt.Errorf("subjob: delta covers %d pipes, snapshot has %d", len(d.Pipes), len(s.Pipes))
	}
	for i := range d.PEFull {
		switch {
		case d.PEFull[i] != nil:
			s.PEStates[i] = d.PEFull[i]
		case d.PEDeltas[i] != nil:
			patched, err := pe.ApplyPatch(s.PEStates[i], d.PEDeltas[i])
			if err != nil {
				return fmt.Errorf("subjob: fold PE %d delta: %w", i, err)
			}
			s.PEStates[i] = patched
		}
	}
	for i, set := range d.PipeSet {
		if set {
			s.Pipes[i] = d.Pipes[i]
		}
	}
	if d.HasInput {
		s.Input = d.Input
	}
	if d.HasOutput {
		if err := s.Output.ApplyDelta(d.Output); err != nil {
			return fmt.Errorf("subjob: fold output delta: %w", err)
		}
	}
	if d.Consumed != nil {
		s.Consumed = d.Consumed
	}
	return nil
}
