package subjob

import (
	"encoding/binary"
	"fmt"
)

// partialMagic frames a partial (bounded-error) checkpoint, the third
// checkpoint kind next to full snapshots ("SHS2") and chained deltas
// ("SHD2").
const partialMagic = "SHP2"

// Partial is a bounded-error checkpoint: only the hot byte ranges of each
// PE's state (the pages its dirty tracking saw change since the previous
// capture) plus the consumption and output positions needed to promote
// from it. Unlike a Delta it is deliberately UNCHAINED — there is no
// PrevSeq, and a standby that misses a frame keeps stale cold bytes
// instead of breaking a chain. That staleness is the quantified error the
// approx policy accounts against its budget; ColdBytes reports how much
// of the full state a frame did not cover.
type Partial struct {
	SubjobID string
	// Consumed is the first PE's consumption positions at capture time;
	// the promoted standby acks upstreams from here.
	Consumed map[string]uint64
	// PEPatches[i] is PE i's hot-range patch (pe patch encoding); nil when
	// the PE shipped in full instead or had nothing to ship.
	PEPatches [][]byte
	// PEFull[i] is PE i's full state, the fallback when the logic has no
	// delta baseline (or is not a DeltaLogic at all).
	PEFull [][]byte
	// OutNext is the primary's output NextSeq at capture time. On promote
	// the standby fast-forwards its (empty) output queue here so the seqs
	// it assigns to regenerated elements line up with what downstream
	// consumers already acknowledged.
	OutNext uint64
	// ColdBytes is the portion of the full PE state, in bytes, that this
	// frame did not ship — the upper bound on state staleness it can leave
	// behind on the standby.
	ColdBytes uint64
	// StateUnits is the shipped size in element-equivalents.
	StateUnits int
}

// ElementUnits returns the partial's shipped size in data-element
// equivalents, the accounting unit of the paper's overhead figures.
func (p *Partial) ElementUnits() int { return p.StateUnits }

// IsPartial reports whether an encoded checkpoint payload is a partial
// frame.
func IsPartial(b []byte) bool { return hasMagic(b, partialMagic) }

// EncodedSize returns the exact byte length of the partial's binary
// encoding.
func (p *Partial) EncodedSize() int {
	n := 4 + 1 + sizeString(p.SubjobID) + sizeConsumed(p.Consumed)
	n += uvarintLen(p.OutNext) + uvarintLen(p.ColdBytes)
	n += uvarintLen(uint64(len(p.PEPatches)))
	for i := range p.PEPatches {
		n++ // kind byte
		switch {
		case p.PEFull[i] != nil:
			n += sizeBytes(p.PEFull[i])
		case p.PEPatches[i] != nil:
			n += sizeBytes(p.PEPatches[i])
		}
	}
	return n + uvarintLen(uint64(p.StateUnits))
}

// AppendTo appends the partial's binary encoding to dst and returns the
// extended slice. With a recycled buffer of sufficient capacity the encode
// allocates nothing.
func (p *Partial) AppendTo(dst []byte) []byte {
	dst = append(dst, partialMagic...)
	dst = append(dst, codecVersion)
	dst = appendString(dst, p.SubjobID)
	dst = appendConsumed(dst, p.Consumed)
	dst = binary.AppendUvarint(dst, p.OutNext)
	dst = binary.AppendUvarint(dst, p.ColdBytes)
	dst = binary.AppendUvarint(dst, uint64(len(p.PEPatches)))
	for i := range p.PEPatches {
		switch {
		case p.PEFull[i] != nil:
			dst = append(dst, peFull)
			dst = appendBytes(dst, p.PEFull[i])
		case p.PEPatches[i] != nil:
			dst = append(dst, peDelta)
			dst = appendBytes(dst, p.PEPatches[i])
		default:
			dst = append(dst, peAbsent)
		}
	}
	return binary.AppendUvarint(dst, uint64(p.StateUnits))
}

// Encode serializes the partial; the returned slice is freshly allocated
// at its exact size and owned by the caller.
func (p *Partial) Encode() ([]byte, error) {
	return p.AppendTo(make([]byte, 0, p.EncodedSize())), nil
}

// DecodePartial parses an encoded partial checkpoint.
func DecodePartial(b []byte) (*Partial, error) {
	if !hasMagic(b, partialMagic) {
		return nil, fmt.Errorf("subjob: not a partial checkpoint")
	}
	r := &creader{b: b[4:]}
	if v := r.byte(); r.err == nil && v != codecVersion {
		return nil, fmt.Errorf("subjob: unknown partial codec version %d", v)
	}
	p := &Partial{}
	p.SubjobID = r.str()
	p.Consumed = r.consumed()
	p.OutNext = r.uvarint()
	p.ColdBytes = r.uvarint()
	nPE := r.uvarint()
	if r.err == nil {
		p.PEPatches = make([][]byte, nPE)
		p.PEFull = make([][]byte, nPE)
		for i := uint64(0); i < nPE && r.err == nil; i++ {
			switch kind := r.byte(); kind {
			case peAbsent:
			case peDelta:
				p.PEPatches[i] = r.bytes()
			case peFull:
				b := r.bytes()
				if b == nil {
					b = []byte{}
				}
				p.PEFull[i] = b
			default:
				r.fail("unknown PE entry kind %d", kind)
			}
		}
	}
	p.StateUnits = int(r.uvarint())
	if err := r.done("partial"); err != nil {
		return nil, err
	}
	return p, nil
}
