package subjob

import (
	"reflect"
	"testing"
)

func samplePartial() *Partial {
	return &Partial{
		SubjobID: "stage-1",
		Consumed: map[string]uint64{"src": 412, "side": 7},
		PEPatches: [][]byte{
			{1, 2, 3, 4},
			nil,
			nil,
		},
		PEFull: [][]byte{
			nil,
			{9, 8},
			nil, // PE 2 shipped nothing this frame
		},
		OutNext:    513,
		ColdBytes:  4096,
		StateUnits: 3,
	}
}

func TestPartialRoundTrip(t *testing.T) {
	p := samplePartial()
	b, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(b) != p.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(b), p.EncodedSize())
	}
	if !IsPartial(b) {
		t.Fatal("IsPartial false on an encoded partial")
	}
	got, err := DecodePartial(b)
	if err != nil {
		t.Fatalf("DecodePartial: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if got.ElementUnits() != 3 {
		t.Fatalf("ElementUnits %d, want 3", got.ElementUnits())
	}
}

func TestPartialRejectsOtherFrames(t *testing.T) {
	p := samplePartial()
	b, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// A partial is not a snapshot, a delta, or a chainable checkpoint.
	if _, err := DecodeSnapshot(b); err == nil {
		t.Fatal("DecodeSnapshot accepted a partial frame")
	}
	if _, err := DecodeDelta(b); err == nil {
		t.Fatal("DecodeDelta accepted a partial frame")
	}
	if _, _, err := DecodeCheckpoint(b); err == nil {
		t.Fatal("DecodeCheckpoint accepted a partial frame")
	}
	// And the other frames are not partials.
	if _, err := DecodePartial([]byte("SHS2....")); err == nil {
		t.Fatal("DecodePartial accepted a snapshot magic")
	}
	if IsPartial([]byte("SHD2")) {
		t.Fatal("IsPartial true on a delta magic")
	}
}

func TestPartialPeek(t *testing.T) {
	p := samplePartial()
	b, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	info, err := PeekCheckpoint(b)
	if err != nil {
		t.Fatalf("PeekCheckpoint: %v", err)
	}
	if !info.IsPartial || info.SubjobID != "stage-1" {
		t.Fatalf("peek %+v, want partial for stage-1", info)
	}
}

func TestPartialDecodeTruncated(t *testing.T) {
	p := samplePartial()
	b, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodePartial(b[:cut]); err == nil {
			t.Fatalf("DecodePartial accepted a %d/%d-byte truncation", cut, len(b))
		}
	}
}
