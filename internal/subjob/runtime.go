package subjob

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/queue"
	"streamha/internal/transport"
)

// PESpec describes one PE of a subjob; every copy instantiates its own
// Logic from the factory.
type PESpec struct {
	Name string
	// NewLogic constructs a fresh Logic instance for one copy.
	NewLogic func() pe.Logic
	// Cost is the CPU work per element.
	Cost time.Duration
}

// Spec describes a subjob independent of any particular copy.
type Spec struct {
	JobID string
	// ID is the copy-agnostic subjob identifier, e.g. "job1/sj2".
	ID string
	// InStreams lists the logical streams feeding the subjob.
	InStreams []string
	// Owners maps each input stream to the subjob ID (or the source owner
	// name) producing it, for acknowledgment routing.
	Owners map[string]string
	// OutStream is the logical stream the subjob produces.
	OutStream string
	// PEs is the pipeline, in order.
	PEs []PESpec
	// BatchSize is the per-PE batch size (default 64).
	BatchSize int
}

// AckTarget is one destination for cumulative acknowledgments of an input
// stream: a copy of the upstream subjob owning that stream.
type AckTarget struct {
	Node   transport.NodeID
	Stream string // AckStream(owner, logical)
}

// senderStaleness bounds how long a copy that stopped delivering data keeps
// receiving acknowledgments. Acknowledgments route to the copies that
// actually delivered data recently, so the ack plane re-wires itself across
// switchover, rollback and migration without any control traffic.
const senderStaleness = 2 * time.Second

// Runtime is one running (or suspended) copy of a subjob on a machine.
type Runtime struct {
	spec Spec
	m    *machine.Machine

	in    *queue.Input
	pes   []*pe.PE
	pipes []*pe.Pipe
	out   *queue.Output

	// opMu serializes state-level operations: checkpoints, restores,
	// suspend/resume and read-state snapshots. Without it a checkpoint
	// manager's resume could unpark PEs in the middle of a controller's
	// restore.
	opMu sync.Mutex

	mu        sync.Mutex
	suspended bool
	started   bool
	stopped   bool
	senders   map[string]map[transport.NodeID]time.Time
}

// New assembles a subjob copy on m. If startSuspended is true the copy's
// PEs park immediately when started — the pre-deployed standby of the
// hybrid method. Call Start to register message handlers and launch PE
// loops.
func New(spec Spec, m *machine.Machine, startSuspended bool) (*Runtime, error) {
	if len(spec.PEs) == 0 {
		return nil, fmt.Errorf("subjob %s: no PEs", spec.ID)
	}
	if spec.BatchSize <= 0 {
		spec.BatchSize = 64
	}
	r := &Runtime{
		spec:      spec,
		m:         m,
		in:        queue.NewInput(spec.InStreams...),
		suspended: startSuspended,
		senders:   make(map[string]map[transport.NodeID]time.Time),
	}
	r.out = queue.NewOutput(spec.OutStream, func(to transport.NodeID, msg transport.Message) {
		m.Send(to, msg)
	})

	r.pipes = make([]*pe.Pipe, len(spec.PEs)-1)
	for i := range r.pipes {
		r.pipes[i] = pe.NewPipe()
	}
	r.pes = make([]*pe.PE, len(spec.PEs))
	for i, ps := range spec.PEs {
		var src pe.Source
		if i == 0 {
			src = r.in
		} else {
			src = r.pipes[i-1]
		}
		var sink pe.Sink
		if i == len(spec.PEs)-1 {
			sink = outputSink{r.out}
		} else {
			sink = r.pipes[i]
		}
		r.pes[i] = pe.New(pe.Config{
			Name:      fmt.Sprintf("%s/%s", spec.ID, ps.Name),
			Logic:     ps.NewLogic(),
			Cost:      ps.Cost,
			BatchSize: spec.BatchSize,
			Executor:  m.CPU(),
			Source:    src,
			Sink:      sink,
		})
	}
	return r, nil
}

type outputSink struct{ out *queue.Output }

func (s outputSink) Push(elems []element.Element) { s.out.Publish(elems) }

// Spec returns the subjob's specification.
func (r *Runtime) Spec() Spec { return r.spec }

// Machine returns the hosting machine.
func (r *Runtime) Machine() *machine.Machine { return r.m }

// Node returns the hosting machine's node ID.
func (r *Runtime) Node() transport.NodeID { return r.m.ID() }

// Out returns the subjob's output queue, for subscription wiring.
func (r *Runtime) Out() *queue.Output { return r.out }

// In returns the subjob's input queue, for wiring and tests.
func (r *Runtime) In() *queue.Input { return r.in }

// PEs returns the PE runtimes in pipeline order.
func (r *Runtime) PEs() []*pe.PE { return r.pes }

// Start registers the copy's message handlers on its machine and launches
// the PE loops (parked if the copy was created suspended).
func (r *Runtime) Start() {
	r.mu.Lock()
	if r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.started = true
	suspended := r.suspended
	r.mu.Unlock()

	for _, s := range r.spec.InStreams {
		logical := s
		r.m.RegisterStream(DataStream(r.spec.ID, logical), func(from transport.NodeID, msg transport.Message) {
			r.noteSender(logical, from)
			if msg.Seq > 0 {
				// Partition-filtered send: Seq is the covered watermark (the
				// sequence the batch was filtered up to), not a per-element seq.
				r.in.PushCovered(logical, msg.Elements, msg.Seq)
			} else {
				r.in.Push(logical, msg.Elements)
			}
		})
	}
	r.m.RegisterStream(AckStream(r.spec.ID, r.spec.OutStream), func(from transport.NodeID, msg transport.Message) {
		r.out.Ack(from, msg.Seq)
	})
	r.m.RegisterStream(ResyncStream(r.spec.ID, r.spec.OutStream), func(from transport.NodeID, _ transport.Message) {
		// A downstream consumer restarted from a durable checkpoint and
		// asks for everything it has not acknowledged.
		r.out.Resync(from)
	})

	for _, p := range r.pes {
		if suspended {
			p.Pause()
		}
		p.Start()
	}
}

// Stop halts the copy's PE loops and unregisters its handlers.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()

	for _, s := range r.spec.InStreams {
		r.m.UnregisterStream(DataStream(r.spec.ID, s))
	}
	r.m.UnregisterStream(AckStream(r.spec.ID, r.spec.OutStream))
	r.m.UnregisterStream(ResyncStream(r.spec.ID, r.spec.OutStream))
	for _, p := range r.pes {
		p.Stop()
	}
}

// Suspend parks every PE; a suspended copy consumes no CPU. It blocks
// until the copy is quiescent.
func (r *Runtime) Suspend() {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	r.suspended = true
	r.mu.Unlock()
	for _, p := range r.pes {
		p.Pause()
	}
}

// Resume unparks every PE. This is the fast path of the hybrid switchover:
// the pre-deployed copy only needs its processing-loop flags reset.
func (r *Runtime) Resume() {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	r.suspended = false
	r.mu.Unlock()
	for _, p := range r.pes {
		p.Resume()
	}
}

// WithPaused runs f with every PE parked, holding the operation lock, and
// unparks them afterwards (unless the copy is suspended). Checkpoint
// managers use it so their pause/resume cannot interleave with recovery
// restores.
func (r *Runtime) WithPaused(f func()) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.PauseAll()
	defer r.ResumeAll()
	f()
}

// Exclusive runs f holding the operation lock without touching PE pause
// state. Standby stores use it to apply checkpoint refreshes atomically
// with respect to rollback snapshots.
func (r *Runtime) Exclusive(f func()) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	f()
}

// SuspendAndSnapshot atomically suspends the copy and captures its state —
// the secondary side of the hybrid rollback's read-state step.
func (r *Runtime) SuspendAndSnapshot() *Snapshot {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	r.suspended = true
	r.mu.Unlock()
	for _, p := range r.pes {
		p.Pause()
	}
	return r.Snapshot()
}

// Suspended reports whether the copy is suspended.
func (r *Runtime) Suspended() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suspended
}

// PauseAll parks every PE for a checkpoint and blocks until quiescent.
func (r *Runtime) PauseAll() {
	for _, p := range r.pes {
		p.Pause()
	}
}

// ResumeAll unparks the PEs after a checkpoint unless the copy is
// suspended, in which case it stays parked.
func (r *Runtime) ResumeAll() {
	r.mu.Lock()
	suspended := r.suspended
	r.mu.Unlock()
	if suspended {
		return
	}
	for _, p := range r.pes {
		p.Resume()
	}
}

// Snapshot captures the copy's checkpointable state. The copy must be
// paused (or suspended).
func (r *Runtime) Snapshot() *Snapshot {
	s := &Snapshot{
		SubjobID: r.spec.ID,
		Consumed: r.pes[0].ConsumedPositions(),
		PEStates: make([][]byte, len(r.pes)),
		Pipes:    make([][]element.Element, len(r.pipes)),
		Output:   r.out.Snapshot(),
	}
	for i, p := range r.pes {
		s.PEStates[i] = p.Logic().Snapshot()
		s.StateUnits += p.Logic().StateSize()
	}
	for i, pp := range r.pipes {
		s.Pipes[i] = pp.Snapshot()
	}
	return s
}

// Restore overwrites the copy's state from a snapshot. The copy must be
// paused (or suspended). The input queue is aligned to the snapshot's
// consumption positions: elements the snapshot already covers are
// discarded and the dedup mark raised so retransmissions are recognized.
func (r *Runtime) Restore(s *Snapshot) error {
	if s.SubjobID != r.spec.ID {
		return fmt.Errorf("subjob %s: snapshot for %s", r.spec.ID, s.SubjobID)
	}
	if len(s.PEStates) != len(r.pes) || len(s.Pipes) != len(r.pipes) {
		return fmt.Errorf("subjob %s: snapshot shape mismatch", r.spec.ID)
	}
	for i, p := range r.pes {
		if err := p.Logic().Restore(s.PEStates[i]); err != nil {
			return fmt.Errorf("subjob %s: restore PE %d: %w", r.spec.ID, i, err)
		}
	}
	for i, pp := range r.pipes {
		pp.Restore(s.Pipes[i])
	}
	if err := r.out.Restore(s.Output); err != nil {
		return err
	}
	r.pes[0].SetConsumedPositions(s.Consumed)
	r.in.SetAccepted(s.Consumed)
	return nil
}

// CaptureFull captures a full snapshot and aligns every PE's delta
// tracking with it, so a subsequent CaptureDelta describes exactly the
// changes since this snapshot. Checkpoint managers use it for rebase
// checkpoints; recovery paths keep using Snapshot, which leaves the
// tracking untouched. The copy must be paused (or suspended).
func (r *Runtime) CaptureFull() *Snapshot {
	s := r.Snapshot()
	for _, p := range r.pes {
		if dl, ok := p.Logic().(pe.DeltaLogic); ok {
			dl.ResetDelta()
		}
	}
	return s
}

// DeltaOptions selects what a CaptureDelta covers.
type DeltaOptions struct {
	// OutputSince is the output queue's NextSeq recorded at the previous
	// capture that included the output; the delta carries only elements
	// published since. Ignored unless IncludeOutput.
	OutputSince uint64
	// IncludeOutput covers the output queue (all variants except the
	// individual variant's non-final PEs).
	IncludeOutput bool
	// IncludeInput covers the input queue (synchronous variant, and the
	// individual variant's first PE).
	IncludeInput bool
	// OnlyPE restricts PE state and pipes to a single PE (the individual
	// variant); -1 covers every PE. Restricting resets only that PE's
	// change tracking, so the rotation's per-PE chains stay intact.
	OnlyPE int
}

// CaptureDelta captures an incremental checkpoint: each covered PE's state
// patch (with a full-state fallback where no delta baseline exists), pipe
// contents, and the output queue's advance since OutputSince. It returns
// ok=false when the output queue cannot express the requested advance —
// the runtime was restored to an older state since the previous capture —
// in which case the caller must rebase with CaptureFull. The copy must be
// paused (or suspended).
func (r *Runtime) CaptureDelta(opt DeltaOptions) (*Delta, bool) {
	d := &Delta{
		SubjobID: r.spec.ID,
		Consumed: r.pes[0].ConsumedPositions(),
		PEDeltas: make([][]byte, len(r.pes)),
		PEFull:   make([][]byte, len(r.pes)),
		Pipes:    make([][]element.Element, len(r.pipes)),
		PipeSet:  make([]bool, len(r.pipes)),
	}
	if opt.IncludeOutput {
		od, ok := r.out.SnapshotSince(opt.OutputSince)
		if !ok {
			return nil, false
		}
		d.Output = od
		d.HasOutput = true
	}
	for i, p := range r.pes {
		if opt.OnlyPE >= 0 && i != opt.OnlyPE {
			continue
		}
		logic := p.Logic()
		if dl, ok := logic.(pe.DeltaLogic); ok {
			if patch, ok := dl.DeltaSnapshot(); ok {
				d.PEDeltas[i] = patch
				d.StateUnits += pe.PatchUnits(patch)
				continue
			}
			dl.ResetDelta()
		}
		full := logic.Snapshot()
		if full == nil {
			full = []byte{}
		}
		d.PEFull[i] = full
		d.StateUnits += logic.StateSize()
	}
	for i, pp := range r.pipes {
		if opt.OnlyPE >= 0 && i != opt.OnlyPE {
			continue
		}
		d.Pipes[i] = pp.Snapshot()
		d.PipeSet[i] = true
	}
	if opt.IncludeInput {
		d.Input = r.in.SnapshotBuf()
		d.HasInput = true
	}
	return d, true
}

// ApplyDelta folds a delta checkpoint into the live copy — the standby
// refresh counterpart of Restore. Chain validity (PrevSeq) is the caller's
// responsibility; a non-contiguous output delta or shape mismatch fails
// without guaranteeing an unmodified copy, so callers must re-baseline
// from a full snapshot after an error. The copy must be paused (or
// suspended).
func (r *Runtime) ApplyDelta(d *Delta) error {
	if d.SubjobID != r.spec.ID {
		return fmt.Errorf("subjob %s: delta for %s", r.spec.ID, d.SubjobID)
	}
	if len(d.PEDeltas) != len(r.pes) || len(d.PEFull) != len(r.pes) || len(d.Pipes) != len(r.pipes) {
		return fmt.Errorf("subjob %s: delta shape mismatch", r.spec.ID)
	}
	if d.HasOutput {
		// Validate the output chain first: if the delta does not chain onto
		// this copy, fail before any state is touched.
		if err := r.out.ApplyDelta(d.Output); err != nil {
			return fmt.Errorf("subjob %s: %w", r.spec.ID, err)
		}
	}
	for i, p := range r.pes {
		switch {
		case d.PEFull[i] != nil:
			if err := p.Logic().Restore(d.PEFull[i]); err != nil {
				return fmt.Errorf("subjob %s: apply PE %d full state: %w", r.spec.ID, i, err)
			}
		case d.PEDeltas[i] != nil:
			dl, ok := p.Logic().(pe.DeltaLogic)
			if !ok {
				return fmt.Errorf("subjob %s: PE %d received a delta but its logic cannot apply one", r.spec.ID, i)
			}
			if err := dl.ApplyDelta(d.PEDeltas[i]); err != nil {
				return fmt.Errorf("subjob %s: apply PE %d delta: %w", r.spec.ID, i, err)
			}
		}
	}
	for i, pp := range r.pipes {
		if d.PipeSet[i] {
			pp.Restore(d.Pipes[i])
		}
	}
	if d.Consumed != nil {
		r.pes[0].SetConsumedPositions(d.Consumed)
		r.in.SetAccepted(d.Consumed)
	}
	return nil
}

// CapturePartial captures a bounded-error checkpoint: each PE's hot-range
// patch from its dirty tracking (with a full-state fallback where no
// baseline exists), the consumption positions, and the output queue's
// NextSeq. Pipes and queued elements are deliberately omitted — whatever
// they hold at failover is part of the loss the approx policy admits and
// accounts. The copy must be paused (or suspended).
func (r *Runtime) CapturePartial() *Partial {
	p := &Partial{
		SubjobID:  r.spec.ID,
		Consumed:  r.pes[0].ConsumedPositions(),
		PEPatches: make([][]byte, len(r.pes)),
		PEFull:    make([][]byte, len(r.pes)),
		OutNext:   r.out.NextSeq(),
	}
	for i, pr := range r.pes {
		logic := pr.Logic()
		if dl, ok := logic.(pe.DeltaLogic); ok {
			if patch, ok := dl.DeltaSnapshot(); ok {
				p.PEPatches[i] = patch
				p.StateUnits += pe.PatchUnits(patch)
				if pl, ok := logic.(pe.PartialLogic); ok {
					if cold := pl.StateBytes() - len(patch); cold > 0 {
						p.ColdBytes += uint64(cold)
					}
				}
				continue
			}
			dl.ResetDelta()
		}
		full := logic.Snapshot()
		if full == nil {
			full = []byte{}
		}
		p.PEFull[i] = full
		p.StateUnits += logic.StateSize()
	}
	return p
}

// ApplyPartial folds a partial checkpoint into the live copy — the standby
// refresh counterpart of ApplyDelta for the approx policy. State ranges
// the frame does not cover keep whatever this copy last saw (the bounded
// staleness the policy admits), pipes are left untouched, and the output
// queue is fast-forwarded to the frame's OutNext so that elements the
// promoted standby regenerates from replayed input land in the primary's
// sequence space. The copy must be paused (or suspended).
func (r *Runtime) ApplyPartial(p *Partial) error {
	if p.SubjobID != r.spec.ID {
		return fmt.Errorf("subjob %s: partial for %s", r.spec.ID, p.SubjobID)
	}
	if len(p.PEPatches) != len(r.pes) || len(p.PEFull) != len(r.pes) {
		return fmt.Errorf("subjob %s: partial shape mismatch", r.spec.ID)
	}
	for i, pr := range r.pes {
		switch {
		case p.PEFull[i] != nil:
			if err := pr.Logic().Restore(p.PEFull[i]); err != nil {
				return fmt.Errorf("subjob %s: apply PE %d full state: %w", r.spec.ID, i, err)
			}
		case p.PEPatches[i] != nil:
			dl, ok := pr.Logic().(pe.DeltaLogic)
			if !ok {
				return fmt.Errorf("subjob %s: PE %d received a patch but its logic cannot apply one", r.spec.ID, i)
			}
			if err := dl.ApplyDelta(p.PEPatches[i]); err != nil {
				return fmt.Errorf("subjob %s: apply PE %d patch: %w", r.spec.ID, i, err)
			}
		}
	}
	r.out.FastForward(p.OutNext)
	if p.Consumed != nil {
		r.pes[0].SetConsumedPositions(p.Consumed)
		r.in.SetAccepted(p.Consumed)
	}
	return nil
}

// SetInputPartition installs the input queue's partition guard: this copy
// serves partition-instance part of the stage routed by split.
func (r *Runtime) SetInputPartition(split *queue.Partitioner, part int) {
	r.in.SetPartition(split, part)
}

// AdoptSnapshot seeds this copy from a *donor instance's* full snapshot
// during a live rescaling: PE states, pipe contents and consumption
// positions are taken over, while the output queue and the copy's own
// identity are deliberately left alone — the adopting instance publishes a
// fresh stream of its own and must not inherit the donor's sequence space.
// Unlike Restore, the snapshot's SubjobID is allowed to differ. The copy
// must be suspended.
func (r *Runtime) AdoptSnapshot(s *Snapshot) error {
	if len(s.PEStates) != len(r.pes) || len(s.Pipes) != len(r.pipes) {
		return fmt.Errorf("subjob %s: adopted snapshot shape mismatch", r.spec.ID)
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	for i, p := range r.pes {
		if err := p.Logic().Restore(s.PEStates[i]); err != nil {
			return fmt.Errorf("subjob %s: adopt PE %d: %w", r.spec.ID, i, err)
		}
	}
	for i, pp := range r.pipes {
		pp.Restore(s.Pipes[i])
	}
	r.pes[0].SetConsumedPositions(s.Consumed)
	r.in.SetAccepted(s.Consumed)
	return nil
}

// AdoptDelta folds a donor instance's delta checkpoint into this copy — the
// incremental refresh of a live rescaling's state sync. Like AdoptSnapshot
// it skips the output queue and the SubjobID check; the delta must have
// been captured without output coverage. The copy must be suspended.
func (r *Runtime) AdoptDelta(d *Delta) error {
	if len(d.PEDeltas) != len(r.pes) || len(d.PEFull) != len(r.pes) || len(d.Pipes) != len(r.pipes) {
		return fmt.Errorf("subjob %s: adopted delta shape mismatch", r.spec.ID)
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	for i, p := range r.pes {
		switch {
		case d.PEFull[i] != nil:
			if err := p.Logic().Restore(d.PEFull[i]); err != nil {
				return fmt.Errorf("subjob %s: adopt PE %d full state: %w", r.spec.ID, i, err)
			}
		case d.PEDeltas[i] != nil:
			dl, ok := p.Logic().(pe.DeltaLogic)
			if !ok {
				return fmt.Errorf("subjob %s: PE %d received a delta but its logic cannot apply one", r.spec.ID, i)
			}
			if err := dl.ApplyDelta(d.PEDeltas[i]); err != nil {
				return fmt.Errorf("subjob %s: adopt PE %d delta: %w", r.spec.ID, i, err)
			}
		}
	}
	for i, pp := range r.pipes {
		if d.PipeSet[i] {
			pp.Restore(d.Pipes[i])
		}
	}
	if d.Consumed != nil {
		r.pes[0].SetConsumedPositions(d.Consumed)
		r.in.SetAccepted(d.Consumed)
	}
	return nil
}

// noteSender remembers that node delivered data on logical, making it an
// acknowledgment target until it goes stale.
func (r *Runtime) noteSender(logical string, node transport.NodeID) {
	now := r.m.Clock().Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	byNode := r.senders[logical]
	if byNode == nil {
		byNode = make(map[transport.NodeID]time.Time)
		r.senders[logical] = byNode
	}
	byNode[node] = now
}

// ackTargets returns the current acknowledgment destinations for logical:
// every copy of the owning subjob that delivered data recently.
func (r *Runtime) ackTargets(logical string) []AckTarget {
	owner := r.spec.Owners[logical]
	stream := AckStream(owner, logical)
	now := r.m.Clock().Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []AckTarget
	for node, seen := range r.senders[logical] {
		if now.Sub(seen) > senderStaleness {
			delete(r.senders[logical], node)
			continue
		}
		out = append(out, AckTarget{Node: node, Stream: stream})
	}
	return out
}

// AckUpstream sends cumulative acknowledgments for the given positions to
// every upstream copy that recently delivered data on each stream.
func (r *Runtime) AckUpstream(positions map[string]uint64) {
	for s, seq := range positions {
		if seq == 0 {
			continue
		}
		for _, t := range r.ackTargets(s) {
			r.m.Send(t.Node, transport.Message{
				Kind:   transport.KindAck,
				Stream: t.Stream,
				Seq:    seq,
			})
		}
	}
}

// ConsumedPositions returns the first PE's consumption positions.
func (r *Runtime) ConsumedPositions() map[string]uint64 {
	return r.pes[0].ConsumedPositions()
}

// Backlog returns the number of elements queued but not yet processed
// inside the copy: input queue plus inter-PE pipes.
func (r *Runtime) Backlog() int {
	n := r.in.Len()
	for _, p := range r.pipes {
		n += p.Len()
	}
	return n
}

// Stats is a JSON-marshalable point-in-time view of one subjob copy,
// exported through the metrics registry.
type Stats struct {
	Subjob    string            `json:"subjob"`
	Node      string            `json:"node"`
	Suspended bool              `json:"suspended"`
	Backlog   int               `json:"backlog"`
	InputLen  int               `json:"input_len"`
	InputDups int               `json:"input_dups"`
	InputGaps int               `json:"input_gaps"`
	Output    queue.OutputStats `json:"output"`
}

// Stats captures the copy's queue depths, dedup counters and output
// retention state.
func (r *Runtime) Stats() Stats {
	dups, gaps := r.in.Drops()
	return Stats{
		Subjob:    r.spec.ID,
		Node:      string(r.Node()),
		Suspended: r.Suspended(),
		Backlog:   r.Backlog(),
		InputLen:  r.in.Len(),
		InputDups: dups,
		InputGaps: gaps,
		Output:    r.out.Stats(),
	}
}
