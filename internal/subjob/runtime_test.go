package subjob

import (
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/transport"
)

func testSpec(id string) Spec {
	return Spec{
		JobID:     "j",
		ID:        id,
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		BatchSize: 8,
		PEs: []PESpec{
			{Name: "a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 2} }},
			{Name: "b", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 2} }},
		},
	}
}

func testRuntime(t *testing.T, suspended bool) (*Runtime, *machine.Machine, *transport.Mem) {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	m, err := machine.New("m1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(testSpec("j/sj"), m, suspended)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt, m, net
}

func feed(t *testing.T, net *transport.Mem, to transport.NodeID, sj string, from, toSeq uint64) {
	t.Helper()
	srcM, err := machine.New("feeder-"+string(to)+sj, clock.New(), net)
	if err != nil {
		// Feeder may exist from a previous call in the same test.
		t.Fatalf("feeder: %v", err)
	}
	batch := make([]element.Element, 0, toSeq-from+1)
	for s := from; s <= toSeq; s++ {
		batch = append(batch, element.Element{ID: s, Seq: s, Payload: int64(s)})
	}
	srcM.Send(to, transport.Message{
		Kind:     transport.KindData,
		Stream:   DataStream(sj, "in"),
		Elements: batch,
	})
}

func waitProcessed(t *testing.T, rt *Runtime, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rt.PEs()[0].Processed() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out: processed %d, want %d", rt.PEs()[0].Processed(), n)
}

func TestRuntimeProcessesAndPublishes(t *testing.T) {
	rt, _, net := testRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 10)
	waitProcessed(t, rt, 10)
	// The output queue retains all 10 (no acks yet).
	deadline := time.Now().Add(time.Second)
	for rt.Out().Len() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rt.Out().Len() != 10 {
		t.Fatalf("output retained %d", rt.Out().Len())
	}
}

func TestRuntimeSuspendedProcessesNothing(t *testing.T) {
	rt, _, net := testRuntime(t, true)
	feed(t, net, "m1", "j/sj", 1, 10)
	time.Sleep(30 * time.Millisecond)
	if got := rt.PEs()[0].Processed(); got != 0 {
		t.Fatalf("suspended runtime processed %d", got)
	}
	if !rt.Suspended() {
		t.Fatal("not suspended")
	}
	rt.Resume()
	waitProcessed(t, rt, 10)
}

func TestSnapshotRestoreRoundTripThroughEncoding(t *testing.T) {
	rt, _, net := testRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 10)
	waitProcessed(t, rt, 10)

	rt.PauseAll()
	snap := rt.Snapshot()
	rt.ResumeAll()

	if snap.Consumed["in"] != 10 {
		t.Fatalf("consumed %v", snap.Consumed)
	}
	if snap.ElementUnits() < 10+4 { // 10 retained outputs + 2 PEs × pad 2
		t.Fatalf("element units %d", snap.ElementUnits())
	}

	encoded, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(encoded)
	if err != nil {
		t.Fatal(err)
	}

	// A suspended standby copy on another machine adopts the snapshot.
	m2, err := machine.New("m2", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := New(testSpec("j/sj"), m2, true)
	if err != nil {
		t.Fatal(err)
	}
	standby.Start()
	defer standby.Stop()
	if err := standby.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if standby.ConsumedPositions()["in"] != 10 {
		t.Fatal("restored consumed positions wrong")
	}
	if standby.In().Accepted("in") != 10 {
		t.Fatal("input dedup mark not aligned")
	}
	if standby.Out().Len() != 10 {
		t.Fatalf("restored output retained %d", standby.Out().Len())
	}
}

func TestRestoreRejectsWrongSubjob(t *testing.T) {
	rt, _, _ := testRuntime(t, true)
	if err := rt.Restore(&Snapshot{SubjobID: "other"}); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestAckRoutesToRecentSenders(t *testing.T) {
	net := transport.NewMem(transport.MemConfig{})
	defer net.Close()
	m, err := machine.New("m1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(testSpec("j/sj"), m, false)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	// An upstream copy that records acks it receives.
	upM, err := machine.New("up1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	acks := make(chan uint64, 16)
	upM.RegisterStream(AckStream("up", "in"), func(_ transport.NodeID, msg transport.Message) {
		acks <- msg.Seq
	})
	upM.Send("m1", transport.Message{
		Kind:     transport.KindData,
		Stream:   DataStream("j/sj", "in"),
		Elements: []element.Element{{ID: 1, Seq: 1}, {ID: 2, Seq: 2}},
	})
	waitProcessed(t, rt, 2)

	rt.AckUpstream(rt.ConsumedPositions())
	select {
	case seq := <-acks:
		if seq != 2 {
			t.Fatalf("ack seq %d", seq)
		}
	case <-time.After(time.Second):
		t.Fatal("no ack routed to the sender")
	}
}

func TestAckUpstreamSkipsZeroPositions(t *testing.T) {
	rt, _, _ := testRuntime(t, false)
	// No data consumed: ack of zero would trim nothing and is suppressed.
	rt.AckUpstream(map[string]uint64{"in": 0}) // must not panic or send
}

func TestWithPausedSerializesWithSuspend(t *testing.T) {
	rt, _, net := testRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 8)
	waitProcessed(t, rt, 8)

	done := make(chan struct{})
	go func() {
		rt.WithPaused(func() {
			time.Sleep(20 * time.Millisecond)
		})
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	rt.Suspend() // must wait for WithPaused to finish, then keep it parked
	select {
	case <-done:
	default:
		t.Fatal("Suspend returned while WithPaused still held the lock")
	}
	if !rt.Suspended() {
		t.Fatal("not suspended")
	}
}

func TestSuspendAndSnapshotAtomicity(t *testing.T) {
	rt, _, net := testRuntime(t, false)
	feed(t, net, "m1", "j/sj", 1, 8)
	waitProcessed(t, rt, 8)
	snap := rt.SuspendAndSnapshot()
	if snap == nil || snap.Consumed["in"] != 8 {
		t.Fatalf("snapshot %+v", snap)
	}
	if !rt.Suspended() {
		t.Fatal("not suspended after SuspendAndSnapshot")
	}
}

func TestBacklogCountsQueuedWork(t *testing.T) {
	rt, _, net := testRuntime(t, true) // suspended: input accumulates
	feed(t, net, "m1", "j/sj", 1, 10)
	deadline := time.Now().Add(time.Second)
	for rt.Backlog() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rt.Backlog() != 10 {
		t.Fatalf("backlog %d", rt.Backlog())
	}
}

func TestStreamNameHelpers(t *testing.T) {
	if DataStream("sj", "s") != "data|sj|s" || AckStream("o", "s") != "ack|o|s" {
		t.Fatal("stream naming changed")
	}
	parts := ParseStream("a|b|c")
	if len(parts) != 3 || parts[1] != "b" {
		t.Fatalf("parts %v", parts)
	}
	if CkptStream("x") == CkptAckStream("x") {
		t.Fatal("checkpoint streams collide")
	}
}

func TestNewRejectsEmptyPEs(t *testing.T) {
	net := transport.NewMem(transport.MemConfig{})
	defer net.Close()
	m, _ := machine.New("m1", clock.New(), net)
	if _, err := New(Spec{ID: "x"}, m, false); err == nil {
		t.Fatal("want error for empty PE list")
	}
}
