package subjob

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"streamha/internal/element"
	"streamha/internal/queue"
)

// Snapshot is the checkpointable state of one subjob copy, per the sweeping
// checkpointing protocol: every PE's internal state, the inter-PE pipe
// contents (the upstream PE's output queue in the paper's model), the final
// output queue, and the consumption positions of the first PE. Input queue
// contents are deliberately excluded — they are recovered by upstream
// retransmission — which is the protocol's main overhead saving.
type Snapshot struct {
	SubjobID string
	// Consumed maps each logical input stream to the highest sequence number
	// whose processing results this snapshot covers. It becomes the
	// cumulative acknowledgment once the snapshot is stored.
	Consumed map[string]uint64
	// PEStates holds each PE's Logic snapshot, in pipeline order.
	PEStates [][]byte
	// Pipes holds the content of each inter-PE pipe; Pipes[i] connects PE i
	// to PE i+1.
	Pipes [][]element.Element
	// Input holds the input queue's unprocessed elements. Only the
	// synchronous and individual checkpointing variants populate it;
	// sweeping checkpointing excludes input queues (they are recovered by
	// upstream retransmission).
	Input []queue.In
	// Output is the final output queue's state.
	Output queue.OutputSnapshot
	// StateUnits is the total internal-state size in element-equivalents.
	StateUnits int
}

// ElementUnits returns the snapshot's size in data-element equivalents,
// the accounting unit of the paper's overhead figures: queued elements plus
// internal state expressed in elements.
func (s *Snapshot) ElementUnits() int {
	n := s.StateUnits + len(s.Output.Buf) + len(s.Input)
	for _, p := range s.Pipes {
		n += len(p)
	}
	return n
}

// encodeBufPool recycles the scratch buffers snapshot encoding grows into.
// Checkpoints are taken continuously (every trim under sweeping
// checkpointing), so reusing the buffer keeps the encode path from
// re-growing a fresh one each time; only the exact-size result is
// allocated per call.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Encode serializes the snapshot for a checkpoint message. The returned
// slice is freshly allocated and owned by the caller.
func (s *Snapshot) Encode() ([]byte, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(s); err != nil {
		encodeBufPool.Put(buf)
		return nil, fmt.Errorf("subjob: encode snapshot: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encodeBufPool.Put(buf)
	return out, nil
}

// DecodeSnapshot parses an encoded snapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("subjob: decode snapshot: %w", err)
	}
	return &s, nil
}
