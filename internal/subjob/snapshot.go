package subjob

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamha/internal/element"
	"streamha/internal/queue"
)

// Snapshot is the checkpointable state of one subjob copy, per the sweeping
// checkpointing protocol: every PE's internal state, the inter-PE pipe
// contents (the upstream PE's output queue in the paper's model), the final
// output queue, and the consumption positions of the first PE. Input queue
// contents are deliberately excluded — they are recovered by upstream
// retransmission — which is the protocol's main overhead saving.
type Snapshot struct {
	SubjobID string
	// Consumed maps each logical input stream to the highest sequence number
	// whose processing results this snapshot covers. It becomes the
	// cumulative acknowledgment once the snapshot is stored.
	Consumed map[string]uint64
	// PEStates holds each PE's Logic snapshot, in pipeline order.
	PEStates [][]byte
	// Pipes holds the content of each inter-PE pipe; Pipes[i] connects PE i
	// to PE i+1.
	Pipes [][]element.Element
	// Input holds the input queue's unprocessed elements. Only the
	// synchronous and individual checkpointing variants populate it;
	// sweeping checkpointing excludes input queues (they are recovered by
	// upstream retransmission).
	Input []queue.In
	// Output is the final output queue's state.
	Output queue.OutputSnapshot
	// StateUnits is the total internal-state size in element-equivalents.
	StateUnits int
}

// ElementUnits returns the snapshot's size in data-element equivalents,
// the accounting unit of the paper's overhead figures: queued elements plus
// internal state expressed in elements.
func (s *Snapshot) ElementUnits() int {
	n := s.StateUnits + len(s.Output.Buf) + len(s.Input)
	for _, p := range s.Pipes {
		n += len(p)
	}
	return n
}

// Clone returns a deep copy of the snapshot. The checkpoint store folds
// deltas into its retained image in place, so consumers that hold a
// snapshot across that folding (Store.Latest) receive an independent copy.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{
		SubjobID:   s.SubjobID,
		PEStates:   make([][]byte, len(s.PEStates)),
		Pipes:      make([][]element.Element, len(s.Pipes)),
		Output:     s.Output,
		StateUnits: s.StateUnits,
	}
	if s.Consumed != nil {
		c.Consumed = make(map[string]uint64, len(s.Consumed))
		for k, v := range s.Consumed {
			c.Consumed[k] = v
		}
	}
	for i, st := range s.PEStates {
		if st != nil {
			c.PEStates[i] = append([]byte(nil), st...)
		}
	}
	for i, p := range s.Pipes {
		c.Pipes[i] = element.CloneBatch(p)
	}
	if s.Input != nil {
		c.Input = append([]queue.In(nil), s.Input...)
	}
	c.Output.Buf = element.CloneBatch(s.Output.Buf)
	return c
}

// Encode serializes the snapshot for a checkpoint message using the binary
// snapshot codec (see codec.go). The returned slice is freshly allocated
// at its exact size and owned by the caller.
func (s *Snapshot) Encode() ([]byte, error) {
	return s.AppendTo(make([]byte, 0, s.EncodedSize())), nil
}

// EncodeGob serializes the snapshot with the seed's encoding/gob codec. It
// is kept as the frozen baseline for the checkpoint benchmarks and as the
// interop fallback exercised by DecodeSnapshot's format sniffing.
func (s *Snapshot) EncodeGob() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("subjob: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses an encoded full snapshot. The binary format is
// detected by its magic preamble; anything else is treated as the legacy
// gob encoding. The preamble check is a prefix match, so an empty or
// zero-PE snapshot — whose binary encoding is the bare preamble plus a
// handful of zero counts — still routes to the binary decoder and never
// falls through to gob.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if hasMagic(b, snapMagic) {
		return decodeSnapshotBinary(b)
	}
	if hasMagic(b, deltaMagic) {
		return nil, fmt.Errorf("subjob: delta checkpoint where full snapshot expected")
	}
	if hasMagic(b, partialMagic) {
		return nil, fmt.Errorf("subjob: partial checkpoint where full snapshot expected")
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("subjob: empty checkpoint payload")
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("subjob: decode snapshot: %w", err)
	}
	return &s, nil
}
