// Package subjob implements the runtime of one subjob copy: the partition
// of a job's PEs placed on one machine, assembled as input queue → PE chain
// (connected by pipes) → output queue, together with its checkpointable
// snapshot and the message wiring that connects copies across machines.
package subjob

import "strings"

// Stream-name helpers. Transport messages are routed to components by an
// opaque Stream string; these helpers define the global naming convention.
// Data and ack streams are keyed by the copy-agnostic subjob ID, so every
// copy of a subjob listens on the same names (on its own machine) and
// replica identity never leaks into the data plane.

// DataStream names the input stream of subjob sj for the logical stream.
func DataStream(sj, logical string) string { return "data|" + sj + "|" + logical }

// AckStream names the acknowledgment stream of the subjob owning logical.
func AckStream(owner, logical string) string { return "ack|" + owner + "|" + logical }

// ResyncStream names the stream on which a restarted consumer asks the
// subjob owning logical to force-replay everything unacknowledged. Cold
// restarts send it after restoring from a durable checkpoint: data sent
// to the dead process is past the sender's watermark but was never
// delivered, and only a forced replay recovers it.
func ResyncStream(owner, logical string) string { return "resync|" + owner + "|" + logical }

// CkptStream names the checkpoint-store stream of subjob sj.
func CkptStream(sj string) string { return "ckpt|" + sj }

// CkptAckStream names the stream on which the checkpoint store confirms
// storage back to subjob sj's checkpoint manager.
func CkptAckStream(sj string) string { return "ckptack|" + sj }

// CtlStream names the control stream of subjob sj's agent on one machine.
func CtlStream(sj string) string { return "ctl|" + sj }

// ReadStateStream names the stream on which a standby serves read-state
// requests for subjob sj.
func ReadStateStream(sj string) string { return "readstate|" + sj }

// HeartbeatStream names the heartbeat responder stream of a machine.
func HeartbeatStream(machineID string) string { return "hb|" + machineID }

// ParseStream splits a stream name into its parts.
func ParseStream(s string) []string { return strings.Split(s, "|") }
