package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streamha/internal/element"
)

// Codec selects the encoding used on outbound TCP connections. Inbound
// connections auto-detect the peer's codec from a 4-byte preamble, so
// segments configured with different codecs interoperate.
type Codec int

const (
	// CodecBinary is the length-prefixed binary codec: a hand-rolled,
	// reflection-free frame encoding with varint field lengths, written in
	// batches with one buffer flush per drained queue. The default.
	CodecBinary Codec = iota
	// CodecGob is the seed's reflection-driven gob framing, kept behind
	// this flag as the frozen benchmark baseline and for cross-codec
	// compatibility testing.
	CodecGob
)

func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	}
	return fmt.Sprintf("codec(%d)", int(c))
}

// Connection preambles. The first four bytes of every outbound connection
// name the codec the sender will speak; serve dispatches on them.
const (
	magicBinary = "SHB1"
	magicGob    = "SHG1"
	magicLen    = 4
)

// maxWireFrame bounds a frame's payload size on decode, so a corrupt or
// hostile length prefix cannot make the reader allocate unboundedly.
const maxWireFrame = 64 << 20

// errFrameMalformed reports a frame that does not parse.
var errFrameMalformed = errors.New("transport: malformed wire frame")

// The binary wire format. A connection carries the preamble followed by a
// stream of frames:
//
//	frame   := len payload            // len: uvarint byte length of payload
//	payload := kind                   // 1 byte (Kind)
//	           from to stream         // each: uvarint length + raw bytes
//	           seq                    // uvarint
//	           command               // uvarint length + raw bytes
//	           elementCount           // uvarint (checkpoint accounting)
//	           state                  // uvarint length + raw bytes
//	           elements               // uvarint count + count fixed-width
//	                                  // element encodings (element.EncodedSize)
//
// All varints are canonical unsigned LEB128 (encoding/binary uvarint).
// Fixed-width element bodies use element.AppendEncode's big-endian layout.

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func framePayloadSize(from, to NodeID, msg *Message) int {
	n := 1 // kind
	n += uvarintLen(uint64(len(from))) + len(from)
	n += uvarintLen(uint64(len(to))) + len(to)
	n += uvarintLen(uint64(len(msg.Stream))) + len(msg.Stream)
	n += uvarintLen(msg.Seq)
	n += uvarintLen(uint64(len(msg.Command))) + len(msg.Command)
	n += uvarintLen(uint64(msg.ElementCount))
	n += uvarintLen(uint64(len(msg.State))) + len(msg.State)
	n += uvarintLen(uint64(len(msg.Elements))) + len(msg.Elements)*element.EncodedSize
	return n
}

func appendLenPrefixed(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendFrame appends the length-prefixed binary encoding of one wire frame
// to dst and returns the extended slice. The payload size is computed up
// front, so encoding is a single append pass with no intermediate buffer.
func AppendFrame(dst []byte, from, to NodeID, msg *Message) []byte {
	dst = binary.AppendUvarint(dst, uint64(framePayloadSize(from, to, msg)))
	dst = append(dst, byte(msg.Kind))
	dst = appendLenPrefixed(dst, string(from))
	dst = appendLenPrefixed(dst, string(to))
	dst = appendLenPrefixed(dst, msg.Stream)
	dst = binary.AppendUvarint(dst, msg.Seq)
	dst = appendLenPrefixed(dst, msg.Command)
	dst = binary.AppendUvarint(dst, uint64(msg.ElementCount))
	dst = binary.AppendUvarint(dst, uint64(len(msg.State)))
	dst = append(dst, msg.State...)
	dst = binary.AppendUvarint(dst, uint64(len(msg.Elements)))
	dst = element.AppendBatch(dst, msg.Elements)
	return dst
}

// DecodeFrame decodes one length-prefixed frame from the front of b and
// returns the decoded fields plus the number of bytes consumed. The decoded
// message owns its memory: nothing in it aliases b.
func DecodeFrame(b []byte) (from, to NodeID, msg Message, n int, err error) {
	size, ln := binary.Uvarint(b)
	if ln <= 0 || size > maxWireFrame || uint64(len(b)-ln) < size {
		err = errFrameMalformed
		return
	}
	from, to, msg, err = decodeFramePayload(b[ln : ln+int(size)])
	n = ln + int(size)
	return
}

// payloadReader is a sticky-error cursor over one frame payload.
type payloadReader struct {
	b   []byte
	err error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = errFrameMalformed
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// str reads a uvarint-length-prefixed string; the conversion copies, so the
// result does not alias the payload buffer.
func (r *payloadReader) str() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// bytes reads a uvarint-length-prefixed byte string into fresh memory.
func (r *payloadReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	var out []byte
	if n > 0 {
		out = append([]byte(nil), r.b[:n]...)
	}
	r.b = r.b[n:]
	return out
}

// decodeFramePayload parses one frame payload. The payload buffer may be
// reused by the caller after return.
func decodeFramePayload(b []byte) (from, to NodeID, msg Message, err error) {
	r := payloadReader{b: b}
	msg.Kind = Kind(r.byte())
	from = NodeID(r.str())
	to = NodeID(r.str())
	msg.Stream = r.str()
	msg.Seq = r.uvarint()
	msg.Command = r.str()
	msg.ElementCount = int(r.uvarint())
	msg.State = r.bytes()
	nElems := r.uvarint()
	if r.err != nil {
		return from, to, Message{}, r.err
	}
	if nElems > uint64(len(r.b)/element.EncodedSize) {
		return from, to, Message{}, errFrameMalformed
	}
	elems, rest, derr := element.DecodeBatch(nil, r.b, int(nElems))
	if derr != nil {
		return from, to, Message{}, derr
	}
	if len(rest) != 0 {
		return from, to, Message{}, errFrameMalformed
	}
	msg.Elements = elems
	return from, to, msg, nil
}
