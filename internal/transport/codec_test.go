package transport

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"streamha/internal/element"
)

func codecTestMessages() []Message {
	return []Message{
		{},
		{Kind: KindData, Stream: "job/s1", Elements: []element.Element{
			{ID: 1, Origin: 123456789, Seq: 1, Payload: -42},
			{ID: 18446744073709551615, Origin: -1, Seq: 99, Payload: 7},
		}},
		{Kind: KindAck, Stream: "job/s2", Seq: 18446744073709551615},
		{Kind: KindPing, Stream: "det/1", Seq: 3},
		{Kind: KindPong, Stream: "det/1", Seq: 3},
		{Kind: KindCheckpoint, Stream: "job/sj0", State: []byte{0, 1, 2, 255, 128}, ElementCount: 7},
		{Kind: KindReadStateReq, Stream: "job/sj1"},
		{Kind: KindReadStateResp, Stream: "job/sj1", State: bytes.Repeat([]byte{0xAB}, 1000), ElementCount: 250},
		{Kind: KindControl, Stream: "job/sj0", Command: "switchover", Seq: 12},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, want := range codecTestMessages() {
		buf := AppendFrame(nil, "sender-node", "receiver-node", &want)
		from, to, got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("msg %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if from != "sender-node" || to != "receiver-node" {
			t.Fatalf("msg %d: endpoints %q -> %q", i, from, to)
		}
		if !reflect.DeepEqual(normalizeMsg(got), normalizeMsg(want)) {
			t.Fatalf("msg %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// normalizeMsg maps empty slices to nil so DeepEqual compares logical
// content, not allocation shape.
func normalizeMsg(m Message) Message {
	if len(m.Elements) == 0 {
		m.Elements = nil
	}
	if len(m.State) == 0 {
		m.State = nil
	}
	return m
}

func TestFrameStreamConcatenation(t *testing.T) {
	msgs := codecTestMessages()
	var buf []byte
	for i := range msgs {
		buf = AppendFrame(buf, NodeID("a"), NodeID("b"), &msgs[i])
	}
	rest := buf
	for i := range msgs {
		_, _, got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeMsg(got), normalizeMsg(msgs[i])) {
			t.Fatalf("frame %d mismatch", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	msg := Message{Kind: KindData, Stream: "s", Command: "c", Seq: 5,
		State:    []byte{1, 2, 3},
		Elements: []element.Element{{ID: 9, Seq: 1}}}
	full := AppendFrame(nil, "from", "to", &msg)
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(full))
		}
	}
}

func TestDecodeFrameJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		// Must not panic; errors are fine, and accidental decodes of random
		// bytes are acceptable as long as they terminate.
		_, _, _, _, _ = DecodeFrame(junk)
	}
}

func TestDecodeFrameRejectsOversizedLength(t *testing.T) {
	huge := AppendFrame(nil, "a", "b", &Message{})
	huge[0] = 0xFF // corrupt the length prefix into a longer varint
	if _, _, _, _, err := DecodeFrame(huge); err == nil {
		t.Fatal("corrupt length prefix decoded")
	}
}

func TestDecodeFrameRejectsElementCountOverrun(t *testing.T) {
	msg := Message{Kind: KindData, Elements: []element.Element{{ID: 1}}}
	buf := AppendFrame(nil, "a", "b", &msg)
	// The element count varint is immediately before the 32-byte element
	// body; bump it so it claims more elements than the payload holds.
	buf[len(buf)-element.EncodedSize-1] = 200
	if _, _, _, _, err := DecodeFrame(buf); err == nil {
		t.Fatal("element-count overrun decoded")
	}
}

// startCodecPair builds a listening receiver segment plus a sender segment
// configured with codec, registers a collector on the receiver, and returns
// (sender endpoint, receiver segment, collector, cleanup).
func startCodecPair(t *testing.T, codec Codec) (Endpoint, *TCP, *collector, func()) {
	t.Helper()
	recv, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := recv.Register("dst", c.handle); err != nil {
		recv.Close()
		t.Fatal(err)
	}
	send, err := NewTCP(TCPConfig{
		Peers: map[NodeID]string{"dst": recv.Addr()},
		Codec: codec,
	})
	if err != nil {
		recv.Close()
		t.Fatal(err)
	}
	src, err := send.Register("src", func(NodeID, Message) {})
	if err != nil {
		send.Close()
		recv.Close()
		t.Fatal(err)
	}
	return src, recv, &c, func() {
		send.Close()
		recv.Close()
	}
}

// TestCrossCodecCompatibility checks that a gob-flagged sender and a
// binary-default receiver (and vice versa) interoperate: serve dispatches
// on the connection preamble, not on local configuration.
func TestCrossCodecCompatibility(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		t.Run("send-"+codec.String(), func(t *testing.T) {
			src, _, c, cleanup := startCodecPair(t, codec)
			defer cleanup()
			want := []element.Element{{ID: 7, Origin: 1, Seq: 1, Payload: 64}}
			if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Elements: want}); err != nil {
				t.Fatal(err)
			}
			if err := src.Send("dst", Message{Kind: KindControl, Stream: "ctl", Command: "activate", Seq: 2}); err != nil {
				t.Fatal(err)
			}
			got := c.waitFor(t, 2)
			if got[0].Elements[0] != want[0] || got[0].Stream != "s" {
				t.Fatalf("data frame %+v", got[0])
			}
			if got[1].Command != "activate" || got[1].Seq != 2 {
				t.Fatalf("control frame %+v", got[1])
			}
		})
	}
}

func TestUnknownPreambleConnectionDropped(t *testing.T) {
	recv, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var c collector
	if _, err := recv.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("JUNKJUNKJUNK")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if c.count() != 0 {
		t.Fatalf("junk connection delivered %d messages", c.count())
	}
}

func TestStrictRoutes(t *testing.T) {
	seg, err := NewTCP(TCPConfig{
		Peers:        map[NodeID]string{"known": "127.0.0.1:1"},
		StrictRoutes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	var c collector
	if _, err := seg.Register("local", c.handle); err != nil {
		t.Fatal(err)
	}
	src, _ := seg.Register("src", func(NodeID, Message) {})
	if err := src.Send("nowhere", Message{Kind: KindData}); err != ErrNoRoute {
		t.Fatalf("unroutable destination: got %v, want ErrNoRoute", err)
	}
	// A routed-but-unreachable peer still drops silently: that models a
	// machine failure, not a misconfiguration.
	if err := src.Send("known", Message{Kind: KindPing}); err != nil {
		t.Fatalf("unreachable peer: got %v, want silent drop", err)
	}
	if err := src.Send("local", Message{Kind: KindData}); err != nil {
		t.Fatalf("local loopback: %v", err)
	}
	c.waitFor(t, 1)
}

func TestWireCounters(t *testing.T) {
	src, recv, c, cleanup := startCodecPair(t, CodecBinary)
	defer cleanup()
	const frames = 20
	for i := 1; i <= frames; i++ {
		if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Seq: uint64(i),
			Elements: []element.Element{{ID: uint64(i), Seq: uint64(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitFor(t, frames)

	// Sender-side counters. src's segment is reachable via its endpoint's
	// network; grab it through the recv loopback instead: count on both.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rs := recv.Stats().Wire
		if rs.FramesRecv == frames && rs.BytesRecv > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver wire counters %+v", rs)
		}
		time.Sleep(time.Millisecond)
	}

	raw, err := json.Marshal(recv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"wire"`)) {
		t.Fatalf("TCP stats JSON missing wire section: %s", raw)
	}
}

func TestSenderWireCounters(t *testing.T) {
	recv, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var c collector
	if _, err := recv.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	send, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"dst": recv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	src, _ := send.Register("src", func(NodeID, Message) {})
	const frames = 10
	for i := 0; i < frames; i++ {
		_ = src.Send("dst", Message{Kind: KindAck, Stream: "s", Seq: uint64(i + 1)})
	}
	c.waitFor(t, frames)
	ws := send.Stats().Wire
	if ws.FramesSent != frames {
		t.Fatalf("frames sent %d, want %d", ws.FramesSent, frames)
	}
	if ws.Batches == 0 || ws.Batches > frames {
		t.Fatalf("batches %d out of range [1, %d]", ws.Batches, frames)
	}
	if ws.BytesSent <= int64(magicLen) {
		t.Fatalf("bytes sent %d", ws.BytesSent)
	}
	if ws.FramesDropped != 0 {
		t.Fatalf("dropped %d frames on a healthy link", ws.FramesDropped)
	}
}

func TestMemStatsOmitWireSection(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	if _, err := net.Register("dst", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	_ = src.Send("dst", Message{Kind: KindData, Elements: make([]element.Element, 2)})
	raw, err := json.Marshal(net.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"wire"`)) {
		t.Fatalf("in-memory stats JSON grew a wire section: %s", raw)
	}
	if !net.Stats().Wire.IsZero() {
		t.Fatal("in-memory wire counters moved")
	}
}

func TestUnreachablePeerCountsDrops(t *testing.T) {
	seg, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"b": "127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	src, _ := seg.Register("a", func(NodeID, Message) {})
	const frames = 10
	for i := 0; i < frames; i++ {
		_ = src.Send("b", Message{Kind: KindPing})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if seg.Stats().Wire.FramesDropped == frames {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dropped %d frames, want %d", seg.Stats().Wire.FramesDropped, frames)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPConnCloseWaitsForWriter checks the close()/done contract directly:
// after close returns, the writer goroutine has exited even if frames were
// still queued for an unreachable peer.
func TestTCPConnCloseWaitsForWriter(t *testing.T) {
	var stats counters
	c := newTCPConn("127.0.0.1:1", CodecBinary, &stats)
	for i := 0; i < 50; i++ {
		c.write(tcpFrame{From: "a", To: "b", Msg: Message{Kind: KindPing, Seq: uint64(i)}})
	}
	finished := make(chan struct{})
	go func() {
		c.close()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("close() did not return")
	}
	select {
	case <-c.done:
	default:
		t.Fatal("close() returned before the writer exited")
	}
	// Idempotent second close must also return.
	c.close()
}
