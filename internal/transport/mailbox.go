package transport

import "sync"

// inboxEntry is one queued delivery.
type inboxEntry struct {
	from NodeID
	msg  Message
}

// mailbox is the unbounded FIFO inbox shared by the in-memory and TCP
// endpoints: producers enqueue under a short lock, and a dedicated
// dispatch goroutine drains whole batches and invokes the handler
// sequentially, so slow handlers never block the network or other
// receivers.
//
// The dispatch loop double-buffers: the batch it drained is scrubbed and
// swapped back in as the next inbox, so steady-state delivery performs no
// allocation — the two batch buffers are recycled for the life of the
// endpoint.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []inboxEntry
	closed bool
	done   chan struct{}
}

// newMailbox creates a mailbox and starts its dispatch goroutine.
func newMailbox(h Handler) *mailbox {
	b := &mailbox{done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.dispatch(h)
	return b
}

// enqueue appends one delivery. It reports false if the mailbox is closed.
func (b *mailbox) enqueue(from NodeID, msg Message) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.inbox = append(b.inbox, inboxEntry{from: from, msg: msg})
	b.cond.Signal()
	return true
}

// isClosed reports whether close has been called.
func (b *mailbox) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// close marks the mailbox closed and wakes the dispatcher, which drains
// remaining entries and exits. It reports false if already closed and does
// not wait for the dispatcher; receive the done channel for that.
func (b *mailbox) close() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.closed = true
	b.cond.Broadcast()
	return true
}

func (b *mailbox) dispatch(h Handler) {
	defer close(b.done)
	// spare is the recycled second buffer; it is touched only by this
	// goroutine, so it needs no locking.
	var spare []inboxEntry
	for {
		b.mu.Lock()
		for len(b.inbox) == 0 && !b.closed {
			b.cond.Wait()
		}
		if b.closed && len(b.inbox) == 0 {
			b.mu.Unlock()
			return
		}
		batch := b.inbox
		b.inbox = spare[:0]
		b.mu.Unlock()
		for _, e := range batch {
			h(e.from, e.msg)
		}
		// Scrub message references (element slices, state buffers) before
		// recycling so the buffer does not pin delivered payloads.
		for i := range batch {
			batch[i] = inboxEntry{}
		}
		spare = batch
	}
}
