package transport

import (
	"container/heap"
	"sync"
	"time"

	"streamha/internal/clock"
)

// MemConfig configures an in-memory network.
type MemConfig struct {
	// Clock is the time source for latency simulation. Defaults to the wall
	// clock.
	Clock clock.Clock
	// Latency is the one-way delivery latency applied to every message.
	// Zero delivers synchronously with Send (still FIFO per receiver).
	Latency time.Duration
}

// Mem is an in-memory Network. Delivery is FIFO per (sender, receiver) pair:
// messages are released by a single scheduler goroutine in (deadline, send
// order) and handed to a per-receiver dispatch goroutine that invokes the
// handler sequentially.
type Mem struct {
	cfg MemConfig

	mu     sync.Mutex
	nodes  map[NodeID]*memNode
	down   map[NodeID]bool
	queue  deliveryQueue
	seq    uint64
	wake   chan struct{}
	closed bool

	obsMu    sync.RWMutex
	observer func(from, to NodeID, msg *Message)

	stats counters
}

// SetObserver installs a hook invoked synchronously on every Send (before
// latency and drop handling), for experiments that need per-destination
// traffic accounting. Pass nil to remove it. The hook must be fast and
// must not call back into the network.
func (m *Mem) SetObserver(f func(from, to NodeID, msg *Message)) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	m.observer = f
}

var _ Network = (*Mem)(nil)

// NewMem creates an in-memory network and starts its delivery scheduler.
// Call Close to stop it.
func NewMem(cfg MemConfig) *Mem {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	m := &Mem{
		cfg:   cfg,
		nodes: make(map[NodeID]*memNode),
		down:  make(map[NodeID]bool),
		wake:  make(chan struct{}, 1),
	}
	if cfg.Latency > 0 {
		go m.schedule()
	}
	return m
}

// Register implements Network.
func (m *Mem) Register(id NodeID, h Handler) (Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; ok {
		return nil, ErrDuplicateNode
	}
	n := newMemNode(m, id, h)
	m.nodes[id] = n
	return n, nil
}

// SetDown implements Network.
func (m *Mem) SetDown(id NodeID, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if down {
		m.down[id] = true
	} else {
		delete(m.down, id)
	}
}

// Stats implements Network.
func (m *Mem) Stats() Stats { return m.stats.snapshot() }

// Close stops the scheduler and all dispatch goroutines. Messages still in
// flight are dropped.
func (m *Mem) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	nodes := make([]*memNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.mu.Unlock()
	m.signal()
	for _, n := range nodes {
		n.Close()
	}
}

func (m *Mem) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Mem) send(from NodeID, to NodeID, msg Message) {
	m.stats.record(&msg)
	m.obsMu.RLock()
	obs := m.observer
	m.obsMu.RUnlock()
	if obs != nil {
		obs(from, to, &msg)
	}
	m.mu.Lock()
	if m.closed || m.down[from] || m.down[to] {
		m.mu.Unlock()
		return
	}
	if m.cfg.Latency == 0 {
		n := m.nodes[to]
		m.mu.Unlock()
		if n != nil {
			n.enqueue(from, msg)
		}
		return
	}
	m.seq++
	heap.Push(&m.queue, &pendingDelivery{
		at:   m.cfg.Clock.Now().Add(m.cfg.Latency),
		seq:  m.seq,
		from: from,
		to:   to,
		msg:  msg,
	})
	m.mu.Unlock()
	m.signal()
}

// schedule is the delivery loop used when latency is non-zero.
func (m *Mem) schedule() {
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		now := m.cfg.Clock.Now()
		var wait time.Duration = -1
		for m.queue.Len() > 0 {
			next := m.queue[0]
			if next.at.After(now) {
				wait = next.at.Sub(now)
				break
			}
			heap.Pop(&m.queue)
			n := m.nodes[next.to]
			delivered := n != nil && !m.down[next.to] && !m.down[next.from]
			if delivered {
				n.enqueue(next.from, next.msg)
			}
		}
		m.mu.Unlock()
		if wait < 0 {
			<-m.wake
			continue
		}
		select {
		case <-m.wake:
		case <-m.cfg.Clock.After(wait):
		}
	}
}

type pendingDelivery struct {
	at   time.Time
	seq  uint64
	from NodeID
	to   NodeID
	msg  Message
}

type deliveryQueue []*pendingDelivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*pendingDelivery)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// memNode is one registered endpoint with an unbounded FIFO mailbox drained
// by a dedicated dispatch goroutine, so slow handlers never block the
// network scheduler or other receivers.
type memNode struct {
	net *Mem
	id  NodeID

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []inboxEntry
	closed bool
	done   chan struct{}
}

type inboxEntry struct {
	from NodeID
	msg  Message
}

var _ Endpoint = (*memNode)(nil)

func newMemNode(net *Mem, id NodeID, h Handler) *memNode {
	n := &memNode{net: net, id: id, done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	go n.dispatch(h)
	return n
}

// ID implements Endpoint.
func (n *memNode) ID() NodeID { return n.id }

// Send implements Endpoint.
func (n *memNode) Send(to NodeID, msg Message) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	n.net.send(n.id, to, msg)
	return nil
}

// Close implements Endpoint.
func (n *memNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()

	n.net.mu.Lock()
	delete(n.net.nodes, n.id)
	n.net.mu.Unlock()
	<-n.done
	return nil
}

func (n *memNode) enqueue(from NodeID, msg Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.inbox = append(n.inbox, inboxEntry{from: from, msg: msg})
	n.cond.Signal()
}

func (n *memNode) dispatch(h Handler) {
	defer close(n.done)
	for {
		n.mu.Lock()
		for len(n.inbox) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed && len(n.inbox) == 0 {
			n.mu.Unlock()
			return
		}
		batch := n.inbox
		n.inbox = nil
		n.mu.Unlock()
		for _, e := range batch {
			h(e.from, e.msg)
		}
	}
}
