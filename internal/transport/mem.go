package transport

import (
	"container/heap"
	"sync"
	"time"

	"streamha/internal/clock"
)

// MemConfig configures an in-memory network.
type MemConfig struct {
	// Clock is the time source for latency simulation. Defaults to the wall
	// clock.
	Clock clock.Clock
	// Latency is the one-way delivery latency applied to every message.
	// Zero delivers synchronously with Send (still FIFO per receiver).
	Latency time.Duration
}

// Mem is an in-memory Network. Delivery is FIFO per (sender, receiver) pair:
// messages are released by a single scheduler goroutine in (deadline, send
// order) and handed to a per-receiver dispatch goroutine that invokes the
// handler sequentially.
//
// Delivery is sharded per receiver: the node registry is guarded by a
// read/write lock the hot send path only read-locks, and each receiver has
// its own inbox lock, so concurrent senders to different nodes never
// contend on a common exclusive lock. Only the latency scheduler's pending
// heap is a shared structure, and it is guarded by its own lock.
type Mem struct {
	cfg MemConfig

	// regMu guards the node registry and liveness flags. Sends take it in
	// read mode; registration, failure injection and shutdown — all rare —
	// take it in write mode.
	regMu  sync.RWMutex
	nodes  map[NodeID]*memNode
	down   map[NodeID]bool
	closed bool

	// schedMu guards the latency scheduler's pending-delivery heap. It is
	// untouched when Latency is zero.
	schedMu sync.Mutex
	queue   deliveryQueue
	seq     uint64
	wake    chan struct{}

	obsMu    sync.RWMutex
	observer func(from, to NodeID, msg *Message)

	stats counters
}

// pendingPool recycles pendingDelivery entries between heap push and pop,
// so the latency scheduler allocates nothing in steady state.
var pendingPool = sync.Pool{New: func() any { return new(pendingDelivery) }}

// SetObserver installs a hook invoked synchronously on every Send (before
// latency and drop handling), for experiments that need per-destination
// traffic accounting. Pass nil to remove it. The hook must be fast and
// must not call back into the network.
func (m *Mem) SetObserver(f func(from, to NodeID, msg *Message)) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	m.observer = f
}

var _ Network = (*Mem)(nil)

// NewMem creates an in-memory network and starts its delivery scheduler.
// Call Close to stop it.
func NewMem(cfg MemConfig) *Mem {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	m := &Mem{
		cfg:   cfg,
		nodes: make(map[NodeID]*memNode),
		down:  make(map[NodeID]bool),
		wake:  make(chan struct{}, 1),
	}
	if cfg.Latency > 0 {
		go m.schedule()
	}
	return m
}

// Register implements Network.
func (m *Mem) Register(id NodeID, h Handler) (Endpoint, error) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if _, ok := m.nodes[id]; ok {
		return nil, ErrDuplicateNode
	}
	n := newMemNode(m, id, h)
	m.nodes[id] = n
	return n, nil
}

// SetDown implements Network.
func (m *Mem) SetDown(id NodeID, down bool) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if down {
		m.down[id] = true
	} else {
		delete(m.down, id)
	}
}

// Stats implements Network.
func (m *Mem) Stats() Stats { return m.stats.snapshot() }

// Close stops the scheduler and all dispatch goroutines. Messages still in
// flight are dropped.
func (m *Mem) Close() {
	m.regMu.Lock()
	if m.closed {
		m.regMu.Unlock()
		return
	}
	m.closed = true
	nodes := make([]*memNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.regMu.Unlock()
	m.signal()
	for _, n := range nodes {
		n.Close()
	}
}

func (m *Mem) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Mem) send(from NodeID, to NodeID, msg Message) {
	m.stats.record(msg.Kind, msg.ElementUnits())
	m.obsMu.RLock()
	obs := m.observer
	m.obsMu.RUnlock()
	if obs != nil {
		// The observer sees (and may amend) a copy declared inside this
		// branch, so the escape it causes is only paid when a hook is
		// installed — never on the plain hot path.
		c := msg
		obs(from, to, &c)
		msg = c
	}
	if m.cfg.Latency == 0 {
		// Synchronous path: read-lock the registry, resolve the receiver,
		// and enqueue on its private inbox. Senders to different receivers
		// share only the read lock.
		m.regMu.RLock()
		if m.closed || m.down[from] || m.down[to] {
			m.regMu.RUnlock()
			return
		}
		n := m.nodes[to]
		m.regMu.RUnlock()
		if n != nil {
			n.box.enqueue(from, msg)
		}
		return
	}
	m.regMu.RLock()
	blocked := m.closed || m.down[from] || m.down[to]
	m.regMu.RUnlock()
	if blocked {
		return
	}
	pd := pendingPool.Get().(*pendingDelivery)
	pd.at = m.cfg.Clock.Now().Add(m.cfg.Latency)
	pd.from = from
	pd.to = to
	pd.msg = msg
	m.schedMu.Lock()
	m.seq++
	pd.seq = m.seq
	heap.Push(&m.queue, pd)
	m.schedMu.Unlock()
	m.signal()
}

// schedule is the delivery loop used when latency is non-zero.
func (m *Mem) schedule() {
	for {
		m.regMu.RLock()
		closed := m.closed
		m.regMu.RUnlock()
		if closed {
			return
		}
		now := m.cfg.Clock.Now()
		var wait time.Duration = -1
		for {
			m.schedMu.Lock()
			if m.queue.Len() == 0 {
				m.schedMu.Unlock()
				break
			}
			next := m.queue[0]
			if next.at.After(now) {
				wait = next.at.Sub(now)
				m.schedMu.Unlock()
				break
			}
			heap.Pop(&m.queue)
			m.schedMu.Unlock()

			m.regMu.RLock()
			n := m.nodes[next.to]
			delivered := n != nil && !m.down[next.to] && !m.down[next.from]
			m.regMu.RUnlock()
			if delivered {
				n.box.enqueue(next.from, next.msg)
			}
			*next = pendingDelivery{}
			pendingPool.Put(next)
		}
		if wait < 0 {
			<-m.wake
			continue
		}
		select {
		case <-m.wake:
		case <-m.cfg.Clock.After(wait):
		}
	}
}

type pendingDelivery struct {
	at   time.Time
	seq  uint64
	from NodeID
	to   NodeID
	msg  Message
}

type deliveryQueue []*pendingDelivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*pendingDelivery)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// memNode is one registered endpoint whose mailbox is drained by a
// dedicated dispatch goroutine, so slow handlers never block the network
// scheduler or other receivers.
type memNode struct {
	net *Mem
	id  NodeID
	box *mailbox
}

var _ Endpoint = (*memNode)(nil)

func newMemNode(net *Mem, id NodeID, h Handler) *memNode {
	return &memNode{net: net, id: id, box: newMailbox(h)}
}

// ID implements Endpoint.
func (n *memNode) ID() NodeID { return n.id }

// Send implements Endpoint.
func (n *memNode) Send(to NodeID, msg Message) error {
	if n.box.isClosed() {
		return ErrClosed
	}
	n.net.send(n.id, to, msg)
	return nil
}

// Close implements Endpoint.
func (n *memNode) Close() error {
	if !n.box.close() {
		return nil
	}
	n.net.regMu.Lock()
	delete(n.net.nodes, n.id)
	n.net.regMu.Unlock()
	<-n.box.done
	return nil
}
