package transport

import (
	"math"
	"sync"
	"time"

	"streamha/internal/clock"
)

// MemConfig configures an in-memory network.
type MemConfig struct {
	// Clock is the time source for latency simulation. Defaults to the wall
	// clock.
	Clock clock.Clock
	// Latency is the one-way delivery latency applied to every message.
	// Zero delivers synchronously with Send (still FIFO per receiver).
	Latency time.Duration
}

// Mem is an in-memory Network. Delivery is FIFO per (sender, receiver) pair:
// messages are released by a single scheduler goroutine in (deadline, send
// order) and handed to a per-receiver dispatch goroutine that invokes the
// handler sequentially.
//
// Delivery is sharded per receiver: the node registry is guarded by a
// read/write lock the hot send path only read-locks, and each receiver has
// its own inbox lock, so concurrent senders to different nodes never
// contend on a common exclusive lock. The latency scheduler is a timing
// wheel (see wheel.go) whose buckets are individually locked, so delayed
// sends append in O(1) without a global scheduler mutex.
type Mem struct {
	cfg MemConfig

	// regMu guards the node registry and liveness flags. Sends take it in
	// read mode; registration, failure injection and shutdown — all rare —
	// take it in write mode.
	regMu  sync.RWMutex
	nodes  map[NodeID]*memNode
	down   map[NodeID]bool
	closed bool

	// wheel is the latency scheduler's pending-delivery timing wheel. It is
	// nil when Latency is zero. laneSeq assigns each registered node a
	// stable wheel lane, round-robin (guarded by regMu).
	wheel   *timingWheel
	laneSeq int
	wake    chan struct{}

	obsMu    sync.RWMutex
	observer func(from, to NodeID, msg *Message)

	stats counters
}

// SetObserver installs a hook invoked synchronously on every Send (before
// latency and drop handling), for experiments that need per-destination
// traffic accounting. Pass nil to remove it. The hook must be fast and
// must not call back into the network.
func (m *Mem) SetObserver(f func(from, to NodeID, msg *Message)) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	m.observer = f
}

var _ Network = (*Mem)(nil)

// NewMem creates an in-memory network and starts its delivery scheduler.
// Call Close to stop it.
func NewMem(cfg MemConfig) *Mem {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	m := &Mem{
		cfg:   cfg,
		nodes: make(map[NodeID]*memNode),
		down:  make(map[NodeID]bool),
		wake:  make(chan struct{}, 1),
	}
	if cfg.Latency > 0 {
		m.wheel = newTimingWheel(cfg.Latency)
		go m.schedule()
	}
	return m
}

// Register implements Network.
func (m *Mem) Register(id NodeID, h Handler) (Endpoint, error) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if _, ok := m.nodes[id]; ok {
		return nil, ErrDuplicateNode
	}
	n := newMemNode(m, id, h)
	n.lane = m.laneSeq
	m.laneSeq++
	m.nodes[id] = n
	return n, nil
}

// SetDown implements Network.
func (m *Mem) SetDown(id NodeID, down bool) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if down {
		m.down[id] = true
	} else {
		delete(m.down, id)
	}
}

// Stats implements Network.
func (m *Mem) Stats() Stats { return m.stats.snapshot() }

// Close stops the scheduler and all dispatch goroutines. Messages still in
// flight are dropped.
func (m *Mem) Close() {
	m.regMu.Lock()
	if m.closed {
		m.regMu.Unlock()
		return
	}
	m.closed = true
	nodes := make([]*memNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.regMu.Unlock()
	m.signal()
	for _, n := range nodes {
		n.Close()
	}
}

func (m *Mem) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Mem) send(lane int, from NodeID, to NodeID, msg Message) {
	m.stats.record(msg.Kind, msg.ElementUnits())
	m.obsMu.RLock()
	obs := m.observer
	m.obsMu.RUnlock()
	if obs != nil {
		// The observer sees (and may amend) a copy declared inside this
		// branch, so the escape it causes is only paid when a hook is
		// installed — never on the plain hot path.
		c := msg
		obs(from, to, &c)
		msg = c
	}
	if m.cfg.Latency == 0 {
		// Synchronous path: read-lock the registry, resolve the receiver,
		// and enqueue on its private inbox. Senders to different receivers
		// share only the read lock.
		m.regMu.RLock()
		if m.closed || m.down[from] || m.down[to] {
			m.regMu.RUnlock()
			return
		}
		n := m.nodes[to]
		m.regMu.RUnlock()
		if n != nil {
			n.box.enqueue(from, msg)
		}
		return
	}
	m.regMu.RLock()
	blocked := m.closed || m.down[from] || m.down[to]
	m.regMu.RUnlock()
	if blocked {
		return
	}
	m.wheel.add(m.cfg.Clock.Now().Add(m.cfg.Latency), lane, from, to, msg)
	m.signal()
}

// schedule is the delivery loop used when latency is non-zero. Each pass
// collects every mature wheel batch in delivery order, hands the entries
// to the receivers' mailboxes, and sleeps until the earliest pending tick
// (or a sender's wake-up).
func (m *Mem) schedule() {
	deliver := func(entries []wheelEntry) {
		for i := range entries {
			e := &entries[i]
			m.regMu.RLock()
			n := m.nodes[e.to]
			delivered := n != nil && !m.down[e.to] && !m.down[e.from]
			m.regMu.RUnlock()
			if delivered {
				n.box.enqueue(e.from, e.msg)
			}
		}
	}
	for {
		m.regMu.RLock()
		closed := m.closed
		m.regMu.RUnlock()
		if closed {
			return
		}
		next := m.wheel.collect(m.cfg.Clock.Now(), deliver)
		if next == math.MaxInt64 {
			<-m.wake
			continue
		}
		wait := m.wheel.timeAt(next).Sub(m.cfg.Clock.Now())
		if wait <= 0 {
			continue
		}
		select {
		case <-m.wake:
		case <-m.cfg.Clock.After(wait):
		}
	}
}

// memNode is one registered endpoint whose mailbox is drained by a
// dedicated dispatch goroutine, so slow handlers never block the network
// scheduler or other receivers.
type memNode struct {
	net  *Mem
	id   NodeID
	lane int // stable wheel lane; see wheelLanes
	box  *mailbox
}

var _ Endpoint = (*memNode)(nil)

func newMemNode(net *Mem, id NodeID, h Handler) *memNode {
	return &memNode{net: net, id: id, box: newMailbox(h)}
}

// ID implements Endpoint.
func (n *memNode) ID() NodeID { return n.id }

// Send implements Endpoint.
func (n *memNode) Send(to NodeID, msg Message) error {
	if n.box.isClosed() {
		return ErrClosed
	}
	n.net.send(n.lane, n.id, to, msg)
	return nil
}

// Close implements Endpoint.
func (n *memNode) Close() error {
	if !n.box.close() {
		return nil
	}
	n.net.regMu.Lock()
	delete(n.net.nodes, n.id)
	n.net.regMu.Unlock()
	<-n.box.done
	return nil
}
