package transport

import (
	"sync"
	"testing"
	"time"

	"streamha/internal/element"
)

// collector accumulates delivered messages.
type collector struct {
	mu   sync.Mutex
	got  []Message
	from []NodeID
}

func (c *collector) handle(from NodeID, msg Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, msg)
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) waitFor(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.count() >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]Message(nil), c.got...)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages (have %d)", n, c.count())
	return nil
}

func TestSendDeliversSynchronouslyAtZeroLatency(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	var c collector
	_, err := net.Register("b", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Register("a", func(NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{Kind: KindData, Stream: "s"}); err != nil {
		t.Fatal(err)
	}
	c.waitFor(t, 1)
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	if _, err := net.Register("x", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Register("x", func(NodeID, Message) {}); err != ErrDuplicateNode {
		t.Fatalf("got %v, want ErrDuplicateNode", err)
	}
}

func TestPerPairFIFOWithLatency(t *testing.T) {
	net := NewMem(MemConfig{Latency: 500 * time.Microsecond})
	defer net.Close()
	var c collector
	if _, err := net.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	const n = 100
	for i := 1; i <= n; i++ {
		_ = src.Send("dst", Message{Kind: KindAck, Seq: uint64(i)})
	}
	got := c.waitFor(t, n)
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d: reordering", i, m.Seq)
		}
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const lat = 20 * time.Millisecond
	net := NewMem(MemConfig{Latency: lat})
	defer net.Close()
	var c collector
	if _, err := net.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	start := time.Now()
	_ = src.Send("dst", Message{Kind: KindPing})
	c.waitFor(t, 1)
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("delivered after %v, want >= %v", elapsed, lat)
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	var c collector
	if _, err := net.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	net.SetDown("dst", true)
	_ = src.Send("dst", Message{Kind: KindData})
	net.SetDown("src", true)
	net.SetDown("dst", false)
	_ = src.Send("dst", Message{Kind: KindData})
	time.Sleep(10 * time.Millisecond)
	if c.count() != 0 {
		t.Fatalf("down node received %d messages", c.count())
	}
	net.SetDown("src", false)
	_ = src.Send("dst", Message{Kind: KindData})
	c.waitFor(t, 1)
}

func TestSendToUnknownNodeIsSilent(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	src, _ := net.Register("src", func(NodeID, Message) {})
	if err := src.Send("nobody", Message{Kind: KindData}); err != nil {
		t.Fatalf("send to unknown: %v", err)
	}
}

func TestClosedEndpointRefusesSend(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	src, _ := net.Register("src", func(NodeID, Message) {})
	_ = src.Close()
	if err := src.Send("x", Message{}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestStatsCountElements(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	if _, err := net.Register("dst", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	_ = src.Send("dst", Message{Kind: KindData, Elements: make([]element.Element, 7)})
	_ = src.Send("dst", Message{Kind: KindCheckpoint, ElementCount: 11})
	_ = src.Send("dst", Message{Kind: KindAck, Seq: 3})
	_ = src.Send("dst", Message{Kind: KindPing})

	s := net.Stats()
	if s.Elements[KindData] != 7 {
		t.Fatalf("data elements %d", s.Elements[KindData])
	}
	if s.Elements[KindCheckpoint] != 11 {
		t.Fatalf("checkpoint elements %d", s.Elements[KindCheckpoint])
	}
	if s.TotalElements() != 18 {
		t.Fatalf("total %d", s.TotalElements())
	}
	if s.TotalMessages() != 4 {
		t.Fatalf("messages %d", s.TotalMessages())
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Messages: map[Kind]int64{KindData: 5}, Elements: map[Kind]int64{KindData: 50}}
	b := Stats{Messages: map[Kind]int64{KindData: 2}, Elements: map[Kind]int64{KindData: 20}}
	d := a.Sub(b)
	if d.Messages[KindData] != 3 || d.Elements[KindData] != 30 {
		t.Fatalf("delta %+v", d)
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	net := NewMem(MemConfig{})
	defer net.Close()
	if _, err := net.Register("dst", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	src, _ := net.Register("src", func(NodeID, Message) {})
	var seen int64
	var mu sync.Mutex
	net.SetObserver(func(from, to NodeID, msg *Message) {
		mu.Lock()
		defer mu.Unlock()
		if to == "dst" {
			seen += int64(msg.ElementUnits())
		}
	})
	_ = src.Send("dst", Message{Kind: KindData, Elements: make([]element.Element, 4)})
	net.SetObserver(nil)
	_ = src.Send("dst", Message{Kind: KindData, Elements: make([]element.Element, 4)})
	mu.Lock()
	defer mu.Unlock()
	if seen != 4 {
		t.Fatalf("observer saw %d element units, want 4", seen)
	}
}

func TestMessageElementUnits(t *testing.T) {
	cases := []struct {
		msg  Message
		want int
	}{
		{Message{Kind: KindData, Elements: make([]element.Element, 3)}, 3},
		{Message{Kind: KindCheckpoint, ElementCount: 9}, 9},
		{Message{Kind: KindReadStateResp, ElementCount: 5}, 5},
		{Message{Kind: KindAck, Seq: 100}, 0},
		{Message{Kind: KindPing}, 0},
		{Message{Kind: KindControl}, 0},
	}
	for _, c := range cases {
		if got := c.msg.ElementUnits(); got != c.want {
			t.Fatalf("%v: got %d want %d", c.msg.Kind, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || Kind(99).String() == "" {
		t.Fatal("Kind.String broken")
	}
}
