package transport

import (
	"encoding/json"
	"sync/atomic"
)

// Stats is a snapshot of cumulative traffic counters, broken down by message
// kind. Element counts use Message.ElementUnits, matching the paper's
// element-based overhead accounting.
type Stats struct {
	Messages map[Kind]int64
	Elements map[Kind]int64
}

// TotalElements returns the total element units across all kinds: the
// y-axis value of the paper's overhead figures.
func (s Stats) TotalElements() int64 {
	var n int64
	for _, v := range s.Elements {
		n += v
	}
	return n
}

// TotalMessages returns the total number of messages across all kinds.
func (s Stats) TotalMessages() int64 {
	var n int64
	for _, v := range s.Messages {
		n += v
	}
	return n
}

// DataElements returns the element units carried in data messages.
func (s Stats) DataElements() int64 { return s.Elements[KindData] }

// CheckpointElements returns the element units carried in checkpoint and
// read-state messages.
func (s Stats) CheckpointElements() int64 {
	return s.Elements[KindCheckpoint] + s.Elements[KindReadStateResp]
}

// MarshalJSON renders the counters keyed by message-kind name, with the
// aggregate totals the paper's overhead figures use, so a Stats value can
// be exported directly through the metrics registry.
func (s Stats) MarshalJSON() ([]byte, error) {
	named := func(m map[Kind]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			out[k.String()] = v
		}
		return out
	}
	return json.Marshal(struct {
		Messages           map[string]int64 `json:"messages"`
		Elements           map[string]int64 `json:"elements"`
		TotalMessages      int64            `json:"total_messages"`
		TotalElements      int64            `json:"total_elements"`
		DataElements       int64            `json:"data_elements"`
		CheckpointElements int64            `json:"checkpoint_elements"`
	}{
		Messages:           named(s.Messages),
		Elements:           named(s.Elements),
		TotalMessages:      s.TotalMessages(),
		TotalElements:      s.TotalElements(),
		DataElements:       s.DataElements(),
		CheckpointElements: s.CheckpointElements(),
	})
}

// Sub returns the counter deltas s minus earlier, for measuring traffic over
// a window.
func (s Stats) Sub(earlier Stats) Stats {
	out := Stats{Messages: map[Kind]int64{}, Elements: map[Kind]int64{}}
	for k, v := range s.Messages {
		out.Messages[k] = v - earlier.Messages[k]
	}
	for k, v := range s.Elements {
		out.Elements[k] = v - earlier.Elements[k]
	}
	return out
}

// counters accumulates traffic with atomics so the hot send path never
// contends on a lock.
type counters struct {
	messages [KindControl + 1]atomic.Int64
	elements [KindControl + 1]atomic.Int64
}

// record counts one message of kind k carrying units element units. It
// takes scalar arguments rather than a *Message so the hot send path never
// takes the message's address, which would force every sent message onto
// the heap.
func (c *counters) record(k Kind, units int) {
	if k < 0 || int(k) >= len(c.messages) {
		k = KindInvalid
	}
	c.messages[k].Add(1)
	if units > 0 {
		c.elements[k].Add(int64(units))
	}
}

func (c *counters) snapshot() Stats {
	s := Stats{Messages: map[Kind]int64{}, Elements: map[Kind]int64{}}
	for k := KindInvalid; k <= KindControl; k++ {
		if n := c.messages[k].Load(); n != 0 {
			s.Messages[k] = n
		}
		if n := c.elements[k].Load(); n != 0 {
			s.Elements[k] = n
		}
	}
	return s
}
