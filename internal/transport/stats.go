package transport

import (
	"encoding/json"
	"sync/atomic"
)

// Stats is a snapshot of cumulative traffic counters, broken down by message
// kind. Element counts use Message.ElementUnits, matching the paper's
// element-based overhead accounting. Wire holds the socket-level counters
// maintained by the TCP transport; it stays zero on the in-memory network.
type Stats struct {
	Messages map[Kind]int64
	Elements map[Kind]int64
	Wire     WireStats
}

// WireStats counts socket-level wire activity on a TCP segment: encoded
// frames and bytes out, write batches (each batch is one queue drain,
// flushed with as few socket writes as possible), decoded frames and bytes
// in, and frames dropped because the peer was unreachable, the connection
// died mid-batch, or the outbound queue overflowed.
type WireStats struct {
	FramesSent    int64 `json:"frames_sent"`
	BytesSent     int64 `json:"bytes_sent"`
	Batches       int64 `json:"batches"`
	FramesRecv    int64 `json:"frames_recv"`
	BytesRecv     int64 `json:"bytes_recv"`
	FramesDropped int64 `json:"frames_dropped"`
}

// IsZero reports whether no wire activity was recorded (always true for
// the in-memory network).
func (w WireStats) IsZero() bool { return w == WireStats{} }

// Sub returns the counter deltas w minus earlier.
func (w WireStats) Sub(earlier WireStats) WireStats {
	return WireStats{
		FramesSent:    w.FramesSent - earlier.FramesSent,
		BytesSent:     w.BytesSent - earlier.BytesSent,
		Batches:       w.Batches - earlier.Batches,
		FramesRecv:    w.FramesRecv - earlier.FramesRecv,
		BytesRecv:     w.BytesRecv - earlier.BytesRecv,
		FramesDropped: w.FramesDropped - earlier.FramesDropped,
	}
}

// TotalElements returns the total element units across all kinds: the
// y-axis value of the paper's overhead figures.
func (s Stats) TotalElements() int64 {
	var n int64
	for _, v := range s.Elements {
		n += v
	}
	return n
}

// TotalMessages returns the total number of messages across all kinds.
func (s Stats) TotalMessages() int64 {
	var n int64
	for _, v := range s.Messages {
		n += v
	}
	return n
}

// DataElements returns the element units carried in data messages.
func (s Stats) DataElements() int64 { return s.Elements[KindData] }

// CheckpointElements returns the element units carried in checkpoint and
// read-state messages.
func (s Stats) CheckpointElements() int64 {
	return s.Elements[KindCheckpoint] + s.Elements[KindReadStateResp]
}

// MarshalJSON renders the counters keyed by message-kind name, with the
// aggregate totals the paper's overhead figures use, so a Stats value can
// be exported directly through the metrics registry.
func (s Stats) MarshalJSON() ([]byte, error) {
	named := func(m map[Kind]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			out[k.String()] = v
		}
		return out
	}
	var wire *WireStats
	if !s.Wire.IsZero() {
		wire = &s.Wire
	}
	return json.Marshal(struct {
		Messages           map[string]int64 `json:"messages"`
		Elements           map[string]int64 `json:"elements"`
		TotalMessages      int64            `json:"total_messages"`
		TotalElements      int64            `json:"total_elements"`
		DataElements       int64            `json:"data_elements"`
		CheckpointElements int64            `json:"checkpoint_elements"`
		Wire               *WireStats       `json:"wire,omitempty"`
	}{
		Messages:           named(s.Messages),
		Elements:           named(s.Elements),
		TotalMessages:      s.TotalMessages(),
		TotalElements:      s.TotalElements(),
		DataElements:       s.DataElements(),
		CheckpointElements: s.CheckpointElements(),
		Wire:               wire,
	})
}

// Sub returns the counter deltas s minus earlier, for measuring traffic over
// a window.
func (s Stats) Sub(earlier Stats) Stats {
	out := Stats{Messages: map[Kind]int64{}, Elements: map[Kind]int64{}}
	for k, v := range s.Messages {
		out.Messages[k] = v - earlier.Messages[k]
	}
	for k, v := range s.Elements {
		out.Elements[k] = v - earlier.Elements[k]
	}
	out.Wire = s.Wire.Sub(earlier.Wire)
	return out
}

// counters accumulates traffic with atomics so the hot send path never
// contends on a lock.
type counters struct {
	messages [KindControl + 1]atomic.Int64
	elements [KindControl + 1]atomic.Int64

	// Socket-level wire counters, maintained only by the TCP transport.
	wireFramesSent atomic.Int64
	wireBytesSent  atomic.Int64
	wireBatches    atomic.Int64
	wireFramesRecv atomic.Int64
	wireBytesRecv  atomic.Int64
	wireDropped    atomic.Int64
}

// record counts one message of kind k carrying units element units. It
// takes scalar arguments rather than a *Message so the hot send path never
// takes the message's address, which would force every sent message onto
// the heap.
func (c *counters) record(k Kind, units int) {
	if k < 0 || int(k) >= len(c.messages) {
		k = KindInvalid
	}
	c.messages[k].Add(1)
	if units > 0 {
		c.elements[k].Add(int64(units))
	}
}

func (c *counters) snapshot() Stats {
	s := Stats{Messages: map[Kind]int64{}, Elements: map[Kind]int64{}}
	for k := KindInvalid; k <= KindControl; k++ {
		if n := c.messages[k].Load(); n != 0 {
			s.Messages[k] = n
		}
		if n := c.elements[k].Load(); n != 0 {
			s.Elements[k] = n
		}
	}
	s.Wire = WireStats{
		FramesSent:    c.wireFramesSent.Load(),
		BytesSent:     c.wireBytesSent.Load(),
		Batches:       c.wireBatches.Load(),
		FramesRecv:    c.wireFramesRecv.Load(),
		BytesRecv:     c.wireBytesRecv.Load(),
		FramesDropped: c.wireDropped.Load(),
	}
	return s
}
