package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig configures a TCP network segment: the nodes hosted by this
// process and the addresses of every peer process.
type TCPConfig struct {
	// Listen is the address this process accepts peer connections on
	// (e.g. ":7001"). Empty disables listening (send-only process).
	Listen string
	// Peers maps remote node IDs to the listen addresses of the processes
	// hosting them. Nodes registered locally do not need entries.
	Peers map[NodeID]string
	// Codec selects the wire encoding for outbound connections. The zero
	// value is CodecBinary; CodecGob keeps the seed's gob framing as a
	// frozen baseline. Inbound connections auto-detect the peer's codec
	// from its preamble, so mixed-codec deployments interoperate.
	Codec Codec
	// StrictRoutes makes Send return ErrNoRoute when the destination is
	// neither hosted locally nor listed in Peers, instead of dropping
	// silently. Messages to known-but-down or unreachable nodes still drop
	// silently: those model machine failures, which the HA layer recovers
	// from; a missing route is a deployment misconfiguration.
	StrictRoutes bool
}

// TCP implements Network over real sockets for genuine multi-process
// deployments. Each process hosts one or more nodes; messages to local
// nodes loop back in-process, messages to remote nodes travel over one
// persistent connection per destination process, encoded with the binary
// wire codec (see codec.go) and written in batches — the writer drains its
// queue into one buffer and flushes it with a single socket write.
//
// Delivery semantics match the in-memory network: FIFO per (sender,
// receiver) pair while a connection lasts, and silent drop when the
// destination is unreachable or down — stream-level retransmission
// recovers the data, exactly as it does after a machine crash.
type TCP struct {
	cfg TCPConfig

	// mu guards the registry and connection tables. The hot send path takes
	// it in read mode; registration, failure injection, lazy dialing and
	// shutdown take it in write mode.
	mu       sync.RWMutex
	locals   map[NodeID]*tcpEndpoint
	down     map[NodeID]bool
	outbound map[string]*tcpConn   // peer address -> connection
	inbound  map[net.Conn]struct{} // accepted connections, closed on Close
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup

	stats counters
}

var _ Network = (*TCP)(nil)

// tcpFrame is the wire unit (and the gob codec's wire type).
type tcpFrame struct {
	From NodeID
	To   NodeID
	Msg  Message
}

// NewTCP creates a TCP network segment and, if configured, starts
// listening. Call Close to stop.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	t := &TCP{
		cfg:      cfg,
		locals:   make(map[NodeID]*tcpEndpoint),
		down:     make(map[NodeID]bool),
		outbound: make(map[string]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.accept()
	}
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// Register implements Network for a node hosted by this process.
func (t *TCP) Register(id NodeID, h Handler) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, ok := t.locals[id]; ok {
		return nil, ErrDuplicateNode
	}
	ep := newTCPEndpoint(t, id, h)
	t.locals[id] = ep
	return ep, nil
}

// SetDown implements Network for locally hosted nodes.
func (t *TCP) SetDown(id NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Stats implements Network.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close stops the listener, closes every connection and endpoint, and waits
// for the writer and serve goroutines to exit.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.listener
	conns := make([]*tcpConn, 0, len(t.outbound))
	for _, c := range t.outbound {
		conns = append(conns, c)
	}
	accepted := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		accepted = append(accepted, c)
	}
	eps := make([]*tcpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	for _, ep := range eps {
		_ = ep.Close()
	}
	t.wg.Wait()
}

func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serve(conn)
	}
}

// serve reads the peer's codec preamble, then decodes inbound frames and
// dispatches them to local endpoints.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	magic, err := br.Peek(magicLen)
	if err != nil {
		return
	}
	if _, err := br.Discard(magicLen); err != nil {
		return
	}
	switch string(magic) {
	case magicBinary:
		t.serveBinary(br)
	case magicGob:
		t.serveGob(br)
	default:
		// Unknown peer protocol: drop the connection.
	}
}

// serveBinary is the read loop for the length-prefixed binary codec. The
// payload buffer is reused across frames; decodeFramePayload copies out
// everything it keeps.
func (t *TCP) serveBinary(br *bufio.Reader) {
	var payload []byte
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil || size > maxWireFrame {
			return
		}
		if uint64(cap(payload)) < size {
			payload = make([]byte, size)
		}
		payload = payload[:size]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		from, to, msg, err := decodeFramePayload(payload)
		if err != nil {
			return
		}
		t.stats.wireFramesRecv.Add(1)
		t.stats.wireBytesRecv.Add(int64(uvarintLen(size)) + int64(size))
		t.deliverLocal(from, to, msg)
	}
}

// serveGob is the read loop for the gob baseline codec.
func (t *TCP) serveGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		t.stats.wireFramesRecv.Add(1)
		t.deliverLocal(f.From, f.To, f.Msg)
	}
}

func (t *TCP) deliverLocal(from, to NodeID, msg Message) {
	t.mu.RLock()
	ep := t.locals[to]
	blocked := t.down[to] || t.down[from]
	t.mu.RUnlock()
	if ep == nil || blocked {
		return
	}
	ep.enqueue(from, msg)
}

// send routes a message: loopback for local destinations, socket for
// remote ones, silent drop for unknown or unreachable destinations (or
// ErrNoRoute for unknown ones under StrictRoutes).
func (t *TCP) send(from NodeID, to NodeID, msg Message) error {
	t.stats.record(msg.Kind, msg.ElementUnits())
	t.mu.RLock()
	if t.closed || t.down[from] || t.down[to] {
		t.mu.RUnlock()
		return nil
	}
	if ep := t.locals[to]; ep != nil {
		t.mu.RUnlock()
		ep.enqueue(from, msg)
		return nil
	}
	addr, ok := t.cfg.Peers[to]
	if !ok {
		t.mu.RUnlock()
		if t.cfg.StrictRoutes {
			return ErrNoRoute
		}
		return nil
	}
	c := t.outbound[addr]
	t.mu.RUnlock()
	if c == nil {
		c = t.dial(addr)
		if c == nil {
			return nil
		}
	}
	c.write(tcpFrame{From: from, To: to, Msg: msg})
	return nil
}

// dial creates (or returns the winner of a racing create of) the
// persistent outbound connection for addr. Returns nil if the network
// closed meanwhile.
func (t *TCP) dial(addr string) *tcpConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	c := t.outbound[addr]
	if c == nil {
		c = newTCPConn(addr, t.cfg.Codec, &t.stats)
		t.outbound[addr] = c
	}
	return c
}

// tcpConn is one lazily-dialed persistent outbound connection with a
// writer goroutine, so senders never block on the socket. The writer
// drains the queue in batches: each batch dials at most once (dropping the
// batch if the peer is unreachable), encodes every frame into one buffer,
// and hands the buffer to the socket in as few writes as possible.
type tcpConn struct {
	addr  string
	codec Codec
	stats *counters

	mu     sync.Mutex
	queue  []tcpFrame
	cond   *sync.Cond
	conn   net.Conn // live socket, mirrored here so close() can interrupt I/O
	closed bool
	done   chan struct{}

	// Writer-goroutine state; touched only by writer.
	sock net.Conn
	enc  *gob.Encoder
	wire []byte
}

const (
	// outboundQueueCap bounds buffered frames per peer; beyond it the
	// oldest are dropped, mirroring a congested link.
	outboundQueueCap = 4096
	// tcpDialTimeout bounds one dial attempt, and with it how long close()
	// can block waiting for the writer.
	tcpDialTimeout = 2 * time.Second
	// wireFlushChunk is the encode-buffer size that triggers a mid-batch
	// flush, keeping the buffer bounded under large batches.
	wireFlushChunk = 64 << 10
)

func newTCPConn(addr string, codec Codec, stats *counters) *tcpConn {
	c := &tcpConn{addr: addr, codec: codec, stats: stats, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.writer()
	return c
}

func (c *tcpConn) write(f tcpFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if len(c.queue) >= outboundQueueCap {
		c.queue = c.queue[1:]
		c.stats.wireDropped.Add(1)
	}
	c.queue = append(c.queue, f)
	c.cond.Signal()
}

// close marks the connection closed, interrupts any in-flight socket I/O,
// and waits for the writer goroutine to exit, so TCP.Close cannot leak a
// writer mid-flush.
func (c *tcpConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	conn := c.conn
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	<-c.done
}

func (c *tcpConn) writer() {
	defer close(c.done)
	defer c.resetConn()
	// spare is the recycled second frame buffer (see mailbox.dispatch): the
	// drained batch is scrubbed and swapped back in as the next queue, so
	// the writer allocates nothing in steady state.
	var spare []tcpFrame
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		batch := c.queue
		c.queue = spare[:0]
		c.mu.Unlock()

		sent := c.writeBatch(batch)
		if sent > 0 {
			c.stats.wireFramesSent.Add(int64(sent))
			c.stats.wireBatches.Add(1)
		}
		if dropped := len(batch) - sent; dropped > 0 {
			c.stats.wireDropped.Add(int64(dropped))
		}
		// Scrub frame payload references before recycling the buffer.
		for i := range batch {
			batch[i] = tcpFrame{}
		}
		spare = batch
	}
}

// writeBatch encodes and writes one drained batch, dialing at most once.
// It returns how many frames reached the socket; the rest are dropped
// (destination unreachable or connection lost mid-batch).
func (c *tcpConn) writeBatch(batch []tcpFrame) int {
	if c.sock == nil && !c.dialOnce() {
		return 0
	}
	if c.codec == CodecGob {
		for i := range batch {
			if err := c.enc.Encode(&batch[i]); err != nil {
				c.resetConn()
				return i
			}
		}
		return len(batch)
	}
	wire := c.wire[:0]
	sent := 0    // frames confirmed written
	pending := 0 // frames encoded into wire, awaiting flush
	for i := range batch {
		f := &batch[i]
		wire = AppendFrame(wire, f.From, f.To, &f.Msg)
		pending++
		if len(wire) >= wireFlushChunk {
			if !c.flush(wire) {
				c.wire = nil
				return sent
			}
			sent += pending
			pending = 0
			wire = wire[:0]
		}
	}
	if len(wire) > 0 {
		if !c.flush(wire) {
			c.wire = nil
			return sent
		}
		sent += pending
	}
	// Keep the encode buffer for the next batch unless a jumbo frame
	// ballooned it.
	if cap(wire) <= 4*wireFlushChunk {
		c.wire = wire[:0]
	} else {
		c.wire = nil
	}
	return sent
}

// flush writes buf to the socket, resetting the connection on error.
func (c *tcpConn) flush(buf []byte) bool {
	if _, err := c.sock.Write(buf); err != nil {
		c.resetConn()
		return false
	}
	c.stats.wireBytesSent.Add(int64(len(buf)))
	return true
}

// dialOnce attempts one dial, sends the codec preamble, and installs the
// socket. It reports whether the connection is usable.
func (c *tcpConn) dialOnce() bool {
	d, err := net.DialTimeout("tcp", c.addr, tcpDialTimeout)
	if err != nil {
		return false
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = d.Close()
		return false
	}
	c.conn = d
	c.mu.Unlock()
	magic := magicBinary
	if c.codec == CodecGob {
		magic = magicGob
	}
	if _, err := d.Write([]byte(magic)); err != nil {
		c.sock = d
		c.resetConn()
		return false
	}
	c.stats.wireBytesSent.Add(magicLen)
	c.sock = d
	if c.codec == CodecGob {
		c.enc = gob.NewEncoder(&countingWriter{w: d, n: &c.stats.wireBytesSent})
	}
	return true
}

// resetConn tears down the current socket after an error or at exit.
func (c *tcpConn) resetConn() {
	if c.sock == nil {
		return
	}
	_ = c.sock.Close()
	c.sock, c.enc = nil, nil
	c.mu.Lock()
	c.conn = nil
	c.mu.Unlock()
}

// countingWriter counts bytes written through it into an atomic, so the
// gob path's byte counter matches the binary path's.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// tcpEndpoint is a locally hosted node on a TCP segment. Its inbox is the
// same recycled-batch mailbox the in-memory transport uses.
type tcpEndpoint struct {
	net *TCP
	id  NodeID
	box *mailbox
}

var _ Endpoint = (*tcpEndpoint)(nil)

func newTCPEndpoint(net *TCP, id NodeID, h Handler) *tcpEndpoint {
	return &tcpEndpoint{net: net, id: id, box: newMailbox(h)}
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() NodeID { return ep.id }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(to NodeID, msg Message) error {
	if ep.box.isClosed() {
		return ErrClosed
	}
	return ep.net.send(ep.id, to, msg)
}

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error {
	if !ep.box.close() {
		return nil
	}
	ep.net.mu.Lock()
	delete(ep.net.locals, ep.id)
	ep.net.mu.Unlock()
	<-ep.box.done
	return nil
}

func (ep *tcpEndpoint) enqueue(from NodeID, msg Message) {
	ep.box.enqueue(from, msg)
}

// ErrNoRoute reports an unroutable destination under
// TCPConfig.StrictRoutes. Without StrictRoutes, sends to unknown nodes
// drop silently for symmetry with machine failures.
var ErrNoRoute = errors.New("transport: no route to node")
