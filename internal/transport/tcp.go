package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCPConfig configures a TCP network segment: the nodes hosted by this
// process and the addresses of every peer process.
type TCPConfig struct {
	// Listen is the address this process accepts peer connections on
	// (e.g. ":7001"). Empty disables listening (send-only process).
	Listen string
	// Peers maps remote node IDs to the listen addresses of the processes
	// hosting them. Nodes registered locally do not need entries.
	Peers map[NodeID]string
}

// TCP implements Network over real sockets for genuine multi-process
// deployments. Each process hosts one or more nodes; messages to local
// nodes loop back in-process, messages to remote nodes travel over one
// persistent gob-encoded connection per destination process.
//
// Delivery semantics match the in-memory network: FIFO per (sender,
// receiver) pair while a connection lasts, and silent drop when the
// destination is unreachable or down — stream-level retransmission
// recovers the data, exactly as it does after a machine crash.
type TCP struct {
	cfg TCPConfig

	// mu guards the registry and connection table. The hot send path takes
	// it in read mode; registration, failure injection, lazy dialing and
	// shutdown take it in write mode.
	mu       sync.RWMutex
	locals   map[NodeID]*tcpEndpoint
	down     map[NodeID]bool
	outbound map[string]*tcpConn // peer address -> connection
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup

	stats counters
}

var _ Network = (*TCP)(nil)

// tcpFrame is the wire unit.
type tcpFrame struct {
	From NodeID
	To   NodeID
	Msg  Message
}

// NewTCP creates a TCP network segment and, if configured, starts
// listening. Call Close to stop.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	t := &TCP{
		cfg:      cfg,
		locals:   make(map[NodeID]*tcpEndpoint),
		down:     make(map[NodeID]bool),
		outbound: make(map[string]*tcpConn),
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.accept()
	}
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// Register implements Network for a node hosted by this process.
func (t *TCP) Register(id NodeID, h Handler) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, ok := t.locals[id]; ok {
		return nil, ErrDuplicateNode
	}
	ep := newTCPEndpoint(t, id, h)
	t.locals[id] = ep
	return ep, nil
}

// SetDown implements Network for locally hosted nodes.
func (t *TCP) SetDown(id NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if down {
		t.down[id] = true
	} else {
		delete(t.down, id)
	}
}

// Stats implements Network.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close stops the listener, closes every connection and endpoint.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ln := t.listener
	conns := make([]*tcpConn, 0, len(t.outbound))
	for _, c := range t.outbound {
		conns = append(conns, c)
	}
	eps := make([]*tcpEndpoint, 0, len(t.locals))
	for _, ep := range t.locals {
		eps = append(eps, ep)
	}
	t.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	for _, ep := range eps {
		_ = ep.Close()
	}
	t.wg.Wait()
}

func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

// serve decodes inbound frames and dispatches them to local endpoints.
func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		t.deliverLocal(f.From, f.To, f.Msg)
	}
}

func (t *TCP) deliverLocal(from, to NodeID, msg Message) {
	t.mu.RLock()
	ep := t.locals[to]
	blocked := t.down[to] || t.down[from]
	t.mu.RUnlock()
	if ep == nil || blocked {
		return
	}
	ep.enqueue(from, msg)
}

// send routes a message: loopback for local destinations, socket for
// remote ones, silent drop for unknown or unreachable destinations.
func (t *TCP) send(from NodeID, to NodeID, msg Message) {
	t.stats.record(msg.Kind, msg.ElementUnits())
	t.mu.RLock()
	if t.closed || t.down[from] || t.down[to] {
		t.mu.RUnlock()
		return
	}
	if ep := t.locals[to]; ep != nil {
		t.mu.RUnlock()
		ep.enqueue(from, msg)
		return
	}
	addr, ok := t.cfg.Peers[to]
	if !ok {
		t.mu.RUnlock()
		return
	}
	c := t.outbound[addr]
	t.mu.RUnlock()
	if c == nil {
		c = t.dial(addr)
		if c == nil {
			return
		}
	}
	c.write(tcpFrame{From: from, To: to, Msg: msg})
}

// dial creates (or returns the winner of a racing create of) the
// persistent outbound connection for addr. Returns nil if the network
// closed meanwhile.
func (t *TCP) dial(addr string) *tcpConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	c := t.outbound[addr]
	if c == nil {
		c = newTCPConn(addr)
		t.outbound[addr] = c
	}
	return c
}

// tcpConn is one lazily-dialed persistent outbound connection with a
// writer goroutine, so senders never block on the socket.
type tcpConn struct {
	addr string

	mu     sync.Mutex
	queue  []tcpFrame
	cond   *sync.Cond
	closed bool
	done   chan struct{}
}

// outboundQueueCap bounds buffered frames per peer; beyond it the oldest
// are dropped, mirroring a congested link.
const outboundQueueCap = 4096

func newTCPConn(addr string) *tcpConn {
	c := &tcpConn{addr: addr, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	go c.writer()
	return c
}

func (c *tcpConn) write(f tcpFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if len(c.queue) >= outboundQueueCap {
		c.queue = c.queue[1:]
	}
	c.queue = append(c.queue, f)
	c.cond.Signal()
}

func (c *tcpConn) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.cond.Broadcast()
}

func (c *tcpConn) writer() {
	defer close(c.done)
	var conn net.Conn
	var enc *gob.Encoder
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	// spare is the recycled second frame buffer (see mailbox.dispatch): the
	// drained batch is scrubbed and swapped back in as the next queue, so
	// the writer allocates nothing in steady state.
	var spare []tcpFrame
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		batch := c.queue
		c.queue = spare[:0]
		c.mu.Unlock()

		for i := range batch {
			if conn == nil {
				var err error
				conn, err = net.Dial("tcp", c.addr)
				if err != nil {
					conn = nil
					continue // drop the frame: destination unreachable
				}
				enc = gob.NewEncoder(conn)
			}
			if err := enc.Encode(&batch[i]); err != nil {
				conn.Close()
				conn, enc = nil, nil
			}
		}
		// Scrub frame payload references before recycling the buffer.
		for i := range batch {
			batch[i] = tcpFrame{}
		}
		spare = batch
	}
}

// tcpEndpoint is a locally hosted node on a TCP segment. Its inbox is the
// same recycled-batch mailbox the in-memory transport uses.
type tcpEndpoint struct {
	net *TCP
	id  NodeID
	box *mailbox
}

var _ Endpoint = (*tcpEndpoint)(nil)

func newTCPEndpoint(net *TCP, id NodeID, h Handler) *tcpEndpoint {
	return &tcpEndpoint{net: net, id: id, box: newMailbox(h)}
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() NodeID { return ep.id }

// Send implements Endpoint.
func (ep *tcpEndpoint) Send(to NodeID, msg Message) error {
	if ep.box.isClosed() {
		return ErrClosed
	}
	ep.net.send(ep.id, to, msg)
	return nil
}

// Close implements Endpoint.
func (ep *tcpEndpoint) Close() error {
	if !ep.box.close() {
		return nil
	}
	ep.net.mu.Lock()
	delete(ep.net.locals, ep.id)
	ep.net.mu.Unlock()
	<-ep.box.done
	return nil
}

func (ep *tcpEndpoint) enqueue(from NodeID, msg Message) {
	ep.box.enqueue(from, msg)
}

// ErrNoRoute reports an unroutable destination (currently unused: sends
// drop silently for symmetry with machine failures, but callers who need
// strict routing can consult it).
var ErrNoRoute = errors.New("transport: no route to node")
