package transport

import (
	"testing"
	"time"

	"streamha/internal/element"
)

// sendUntilReceived sends numbered data frames until the collector's count
// grows past already, returning the sequence number of the last send. It
// gives the writer the repeated traffic it needs to notice a dead socket
// and re-dial on a later batch.
func sendUntilReceived(t *testing.T, src Endpoint, seq uint64, c *collector, already int) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() <= already {
		if time.Now().After(deadline) {
			t.Fatalf("no delivery resumed after %d sends", seq)
		}
		seq++
		if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Seq: seq,
			Elements: []element.Element{{ID: seq, Seq: seq}}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return seq
}

// TestTCPReconnectAfterListenerRestart kills the listening segment
// mid-stream, restarts it on the same address, and checks that delivery
// resumes, per-pair FIFO holds across the outage, and the outage's losses
// show up in the wire frame counters.
func TestTCPReconnectAfterListenerRestart(t *testing.T) {
	recv, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := recv.Addr()
	var c collector
	if _, err := recv.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}

	send, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"dst": addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	src, err := send.Register("src", func(NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: healthy stream.
	var seq uint64
	for i := 0; i < 20; i++ {
		seq++
		if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Seq: seq,
			Elements: []element.Element{{ID: seq, Seq: seq}}}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitFor(t, 20)

	// Phase 2: kill the listener mid-stream and keep sending into the
	// outage. These frames die on write errors or refused dials; the writer
	// must attempt at most one dial per drained batch and count the losses.
	recv.Close()
	for i := 0; i < 30; i++ {
		seq++
		if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Seq: seq,
			Elements: []element.Element{{ID: seq, Seq: seq}}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	// Phase 3: restart the listener on the same address with the same node
	// and confirm delivery resumes.
	recv2, err := NewTCP(TCPConfig{Listen: addr})
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer recv2.Close()
	var c2 collector
	if _, err := recv2.Register("dst", c2.handle); err != nil {
		t.Fatal(err)
	}
	seq = sendUntilReceived(t, src, seq, &c2, 0)
	for i := 0; i < 10; i++ {
		seq++
		if err := src.Send("dst", Message{Kind: KindData, Stream: "s", Seq: seq,
			Elements: []element.Element{{ID: seq, Seq: seq}}}); err != nil {
			t.Fatal(err)
		}
	}
	c2.waitFor(t, 5)

	// FIFO per (sender, receiver) pair must hold within each connection
	// epoch and across the gap: sequence numbers strictly increase over the
	// whole observed stream (this layer never retransmits or reorders).
	assertStrictlyIncreasing := func(name string, got []Message) {
		t.Helper()
		var last uint64
		for i, m := range got {
			if m.Seq <= last {
				t.Fatalf("%s: delivery %d has seq %d after %d: reordering", name, i, m.Seq, last)
			}
			last = m.Seq
		}
	}
	c.mu.Lock()
	phase1 := append([]Message(nil), c.got...)
	c.mu.Unlock()
	assertStrictlyIncreasing("pre-outage", phase1)
	c2.mu.Lock()
	phase2 := append([]Message(nil), c2.got...)
	c2.mu.Unlock()
	assertStrictlyIncreasing("post-restart", phase2)
	if phase2[0].Seq <= phase1[len(phase1)-1].Seq {
		t.Fatalf("post-restart stream rewound: %d after %d",
			phase2[0].Seq, phase1[len(phase1)-1].Seq)
	}

	// The outage must be visible in the new frame counters: something was
	// dropped, and sent+dropped accounts for every send that reached the
	// writer.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ws := send.Stats().Wire
		if ws.FramesDropped > 0 && ws.FramesSent > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outage not reflected in wire counters: %+v", ws)
		}
		time.Sleep(time.Millisecond)
	}
}
