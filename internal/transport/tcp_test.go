package transport

import (
	"testing"
	"time"

	"streamha/internal/element"
)

func TestTCPLoopbackDelivery(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	var c collector
	if _, err := seg.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	src, err := seg.Register("src", func(NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Send("dst", Message{Kind: KindData, Elements: make([]element.Element, 2)}); err != nil {
		t.Fatal(err)
	}
	got := c.waitFor(t, 1)
	if len(got[0].Elements) != 2 {
		t.Fatalf("payload %+v", got[0])
	}
}

func TestTCPCrossSegmentDelivery(t *testing.T) {
	// Segment B hosts the receiver.
	segB, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer segB.Close()
	var c collector
	if _, err := segB.Register("b-node", c.handle); err != nil {
		t.Fatal(err)
	}

	// Segment A knows where b-node lives.
	segA, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"b-node": segB.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer segA.Close()
	src, err := segA.Register("a-node", func(NodeID, Message) {})
	if err != nil {
		t.Fatal(err)
	}

	for i := 1; i <= 50; i++ {
		if err := src.Send("b-node", Message{Kind: KindAck, Stream: "s", Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitFor(t, 50)
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d: reordering over TCP", i, m.Seq)
		}
	}
	c.mu.Lock()
	from := c.from[0]
	c.mu.Unlock()
	if from != "a-node" {
		t.Fatalf("sender identity %q lost", from)
	}
}

func TestTCPRoundTripDataElements(t *testing.T) {
	segB, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer segB.Close()
	var c collector
	if _, err := segB.Register("b", c.handle); err != nil {
		t.Fatal(err)
	}
	segA, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"b": segB.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer segA.Close()
	src, _ := segA.Register("a", func(NodeID, Message) {})
	want := []element.Element{{ID: 1, Seq: 1, Origin: 12345, Payload: -9}}
	_ = src.Send("b", Message{Kind: KindData, Stream: "str", Elements: want})
	got := c.waitFor(t, 1)
	if got[0].Elements[0] != want[0] || got[0].Stream != "str" {
		t.Fatalf("round trip %+v", got[0])
	}
}

func TestTCPUnknownDestinationDropsSilently(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	src, _ := seg.Register("a", func(NodeID, Message) {})
	if err := src.Send("nowhere", Message{Kind: KindData}); err != nil {
		t.Fatalf("got %v, want silent drop", err)
	}
}

func TestTCPUnreachablePeerDropsSilently(t *testing.T) {
	seg, err := NewTCP(TCPConfig{Peers: map[NodeID]string{"b": "127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	src, _ := seg.Register("a", func(NodeID, Message) {})
	for i := 0; i < 10; i++ {
		_ = src.Send("b", Message{Kind: KindPing})
	}
	time.Sleep(50 * time.Millisecond) // writer drains and drops without panicking
}

func TestTCPSetDownBlocksLocalDelivery(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	var c collector
	if _, err := seg.Register("dst", c.handle); err != nil {
		t.Fatal(err)
	}
	src, _ := seg.Register("src", func(NodeID, Message) {})
	seg.SetDown("dst", true)
	_ = src.Send("dst", Message{Kind: KindData})
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("down node received")
	}
	seg.SetDown("dst", false)
	_ = src.Send("dst", Message{Kind: KindData})
	c.waitFor(t, 1)
}

func TestTCPStatsCount(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if _, err := seg.Register("b", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	src, _ := seg.Register("a", func(NodeID, Message) {})
	_ = src.Send("b", Message{Kind: KindData, Elements: make([]element.Element, 4)})
	if got := seg.Stats().DataElements(); got != 4 {
		t.Fatalf("stats %d", got)
	}
}

func TestTCPDuplicateRegistration(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if _, err := seg.Register("x", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Register("x", func(NodeID, Message) {}); err != ErrDuplicateNode {
		t.Fatalf("got %v", err)
	}
}

func TestTCPClosedEndpointSend(t *testing.T) {
	seg, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	src, _ := seg.Register("a", func(NodeID, Message) {})
	_ = src.Close()
	if err := src.Send("b", Message{}); err != ErrClosed {
		t.Fatalf("got %v", err)
	}
}
