// Package transport moves messages between machines.
//
// It provides a Network abstraction with two implementations: an in-memory
// network with configurable latency and element-level traffic accounting
// (used by experiments and tests), and a TCP network (used by the
// streamha-node daemon for genuine multi-process deployments). High
// availability protocols above this layer only observe message delivery and
// latency, so the two implementations are interchangeable.
package transport

import (
	"errors"
	"fmt"

	"streamha/internal/element"
)

// NodeID names a transport endpoint. Machines, sources, sinks and the
// coordinator each own one endpoint.
type NodeID string

// Kind discriminates the message union.
type Kind int

// Message kinds. The set mirrors the protocol of the paper's system:
// data batches and cumulative acks implement the stream with sweeping
// checkpointing; pings and pongs implement heartbeat failure detection;
// checkpoint and read-state messages implement passive/hybrid standby; and
// control messages carry deployment and switchover commands.
const (
	KindInvalid Kind = iota
	KindData
	KindAck
	KindPing
	KindPong
	KindCheckpoint
	KindReadStateReq
	KindReadStateResp
	KindControl
)

var kindNames = map[Kind]string{
	KindInvalid:       "invalid",
	KindData:          "data",
	KindAck:           "ack",
	KindPing:          "ping",
	KindPong:          "pong",
	KindCheckpoint:    "checkpoint",
	KindReadStateReq:  "read-state-req",
	KindReadStateResp: "read-state-resp",
	KindControl:       "control",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Message is the single wire message type, a discriminated union in the
// style of consensus libraries. Which fields are meaningful depends on Kind:
//
//   - KindData: Stream (link ID) and Elements.
//   - KindAck: Stream and Seq (cumulative acknowledged sequence number).
//   - KindPing/KindPong: Stream (detector session) and Seq (ping number).
//   - KindCheckpoint: Stream (subjob ID), State (encoded snapshot) and
//     ElementCount (snapshot size in element-equivalents, for accounting).
//   - KindReadStateReq/Resp: Stream (subjob ID), State, ElementCount.
//   - KindControl: Stream (target subjob ID), Command and Seq.
//
// Messages are fanned out zero-copy: the same Elements backing array may be
// shared by the messages delivered to every subscriber of a stream (and by
// the publisher's own retained reference). Handlers must treat Elements and
// State as immutable; a consumer that needs to mutate or retain them copies
// first (element.CloneBatch).
type Message struct {
	Kind         Kind
	Stream       string
	Seq          uint64
	Command      string
	Elements     []element.Element
	State        []byte
	ElementCount int
}

// ElementUnits returns the size of the message in data-element equivalents,
// the unit used by the paper's "message overhead (# of elements)" axes.
// Control traffic (acks, heartbeats, commands) counts as zero elements.
func (m *Message) ElementUnits() int {
	switch m.Kind {
	case KindData:
		return len(m.Elements)
	case KindCheckpoint, KindReadStateResp:
		return m.ElementCount
	default:
		return 0
	}
}

// Handler receives messages delivered to an endpoint. Handlers for one
// endpoint are invoked sequentially in delivery order; they may block.
type Handler func(from NodeID, msg Message)

// Endpoint is a registered node's sending side.
type Endpoint interface {
	// ID returns the node this endpoint belongs to.
	ID() NodeID
	// Send delivers msg to the node named to. Delivery is asynchronous and
	// FIFO per (sender, receiver) pair. Sending to a down or unknown node
	// silently drops the message, mirroring UDP-like loss on machine
	// failure; stream-level retransmission recovers the data.
	Send(to NodeID, msg Message) error
	// Close unregisters the endpoint.
	Close() error
}

// Network registers endpoints and routes messages between them.
type Network interface {
	// Register creates an endpoint for id whose incoming messages are passed
	// to h. Registering an already-registered id is an error.
	Register(id NodeID, h Handler) (Endpoint, error)
	// SetDown marks a node as down (true) or up (false). Messages to or from
	// a down node are dropped. Used to model machine crashes.
	SetDown(id NodeID, down bool)
	// Stats returns a snapshot of cumulative traffic counters.
	Stats() Stats
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrDuplicateNode is returned by Register when the node ID is taken.
var ErrDuplicateNode = errors.New("transport: node already registered")
