package transport

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// The in-memory network's latency scheduler is a timing wheel. The seed
// implementation pushed one entry per message into a container/heap behind a
// single mutex — an O(log n) critical section every sender serialized on,
// and one the drainer also held while popping. The wheel replaces that with
// per-tick buckets, each sharded into per-sender lanes: a sender quantizes
// its delivery deadline to a tick and appends an entry to the tail of its
// own lane in that tick's bucket (O(1), and — since every sender targets
// the same "now + Latency" tick — concurrent senders shard across lane
// locks instead of piling onto one), while the scheduler drains buckets it
// no longer shares with senders.
//
// Entries are stored by value in per-lane slabs, and a fully mature lane is
// handed to the scheduler as a whole batch — no per-entry allocation,
// pooling, or copying on the common path. Consumed slabs are scrubbed and
// parked back on their lane as a spare for the next fill, so steady state
// runs allocation-free no matter how deep the backlog grows.
//
// Invariants the wheel maintains:
//
//   - Never early: an entry matures at the first tick boundary at or after
//     its deadline (tickFor rounds up), so observed latency is in
//     [Latency, Latency+tick).
//   - Per-(sender,receiver) FIFO: a sender's deadlines are non-decreasing,
//     so its entries land in non-decreasing ticks; a sender always appends
//     to the same lane index, so equal ticks keep append order, and
//     collect always releases distinct ticks in ascending order — the hot
//     path walks elapsed ticks' buckets directly, and the deep-lag path
//     sweeps one rotation-sized band at a time, each band anchored at the
//     earliest pending tick.
//   - No missed entries: collect's walk covers every tick from the
//     earliest published pending tick (tracked by the `published` atomic
//     min, so a sender that stalls between reading the clock and
//     appending cannot strand an entry behind the walk) through nowTick,
//     so an entry is released on the first pass after its tick regardless
//     of how far the scheduler lags. A bucket can simultaneously hold
//     entries for ticks a full rotation apart; collect partitions and
//     keeps the ones beyond the band being drained.
const (
	// wheelBuckets is the wheel size; a power of two so the bucket index is
	// a mask. Entries mature within one Latency of being added, so pending
	// ticks span far fewer than wheelBuckets in steady state and collisions
	// between rotations are rare.
	wheelBuckets = 256
	// wheelTickDiv sets tick granularity as a fraction of the simulated
	// latency: the tick is Latency/wheelTickDiv rounded up to a power of
	// two — so quantizing a deadline is a shift, not a 64-bit division, on
	// every add — and delivery is quantized to at most one tick late.
	wheelTickDiv = 64
	// minWheelTick bounds the tick from below so sub-microsecond latencies
	// do not create a degenerate always-hot wheel.
	minWheelTick = time.Microsecond
	// wheelLanes shards each bucket by sender. A sender keeps one lane for
	// its lifetime (assigned round-robin at registration), which preserves
	// per-pair append order inside a bucket while spreading concurrent
	// senders over independent locks.
	wheelLanes = 8
	// wheelSlabCap is the initial capacity of a lane slab; append growth
	// takes over for deeper backlogs, and a grown slab keeps its size when
	// recycled.
	wheelSlabCap = 64
)

// wheelEntry is one pending delivery, stored by value in its lane's slab.
type wheelEntry struct {
	tick int64 // absolute tick index the entry matures at
	from NodeID
	to   NodeID
	msg  Message
}

// wheelLane is one sender shard of a bucket. entries[head:] is the live
// FIFO, kept sorted by tick: a sender's ticks are non-decreasing, so adds
// append at the tail; only a sender that stalled between reading the clock
// and appending sifts back a few slots (stably, staying after equal
// ticks). Sortedness is what lets drain release a prefix — or hand off the
// whole slab — without ever re-touching immature entries, no matter how
// deep the scheduler's backlog. spare is a recycled slab parked by the
// scheduler for the lane's next fill.
type wheelLane struct {
	mu      sync.Mutex
	head    int
	entries []wheelEntry
	spare   []wheelEntry
}

// wheelSeg is one whole-slab handoff staged by drainBucket: the live
// entries are slab[start:], in delivery order, and lane remembers where to
// recycle the slab once emitted.
type wheelSeg struct {
	lane  *wheelLane
	slab  []wheelEntry
	start int
}

// wheelBucket holds the entries of every tick congruent to its index.
type wheelBucket struct {
	lanes [wheelLanes]wheelLane
	// minTick is the smallest tick among entries across all lanes,
	// math.MaxInt64 when the bucket is empty. Senders lower it with a CAS
	// loop after appending; drain recomputes and stores it while holding
	// every lane lock (so no append can slip between the recompute and the
	// store). Read lock-free by collect's scan.
	minTick atomic.Int64
}

// timingWheel schedules pending deliveries for the latency simulation.
type timingWheel struct {
	tickNs    int64
	tickShift uint // tickNs == 1 << tickShift
	// lastTick is the tick through which collect has fully drained the
	// wheel; lastNext is the previous pass's post-drain earliest pending
	// tick. Both are owned by the single collector; senders never touch
	// them.
	lastTick int64
	lastNext int64
	// published is the min tick CAS-published by senders since the last
	// collect pass swapped it out. Together with lastNext it bounds the
	// earliest pending tick without rescanning every bucket per pass.
	published atomic.Int64
	// scratch is the collector-owned copy target for partially mature
	// lanes, reused across passes.
	scratch []wheelEntry
	buckets [wheelBuckets]wheelBucket
}

func newTimingWheel(latency time.Duration) *timingWheel {
	tick := latency / wheelTickDiv
	if tick < minWheelTick {
		tick = minWheelTick
	}
	shift := uint(0)
	for int64(1)<<shift < int64(tick) {
		shift++
	}
	w := &timingWheel{tickNs: 1 << shift, tickShift: shift, lastNext: math.MaxInt64}
	w.published.Store(math.MaxInt64)
	for i := range w.buckets {
		w.buckets[i].minTick.Store(math.MaxInt64)
	}
	return w
}

// tickFor returns the first tick boundary at or after deadline.
func (w *timingWheel) tickFor(deadline time.Time) int64 {
	ns := deadline.UnixNano()
	return (ns + w.tickNs - 1) >> w.tickShift
}

// timeAt returns the wall time of a tick boundary.
func (w *timingWheel) timeAt(tick int64) time.Time {
	return time.Unix(0, tick<<w.tickShift)
}

// add enqueues one delivery maturing at deadline. lane must be the
// sender's stable lane index: per-pair FIFO relies on one sender always
// appending to the same lane.
func (w *timingWheel) add(deadline time.Time, lane int, from, to NodeID, msg Message) {
	tick := w.tickFor(deadline)
	b := &w.buckets[tick&(wheelBuckets-1)]
	ln := &b.lanes[lane&(wheelLanes-1)]
	ln.mu.Lock()
	if ln.entries == nil {
		if ln.spare != nil {
			ln.entries, ln.spare = ln.spare, nil
		} else {
			ln.entries = make([]wheelEntry, 0, wheelSlabCap)
		}
	} else if ln.head > 0 && len(ln.entries) == cap(ln.entries) {
		// Reclaim the drained prefix before growing the backing array.
		n := copy(ln.entries, ln.entries[ln.head:])
		for j := n; j < len(ln.entries); j++ {
			ln.entries[j] = wheelEntry{}
		}
		ln.entries = ln.entries[:n]
		ln.head = 0
	}
	if n := len(ln.entries); n < cap(ln.entries) {
		// Write the entry in place: an append of a composite literal builds
		// a 144-byte temporary and copies it, twice the stores for nothing.
		ln.entries = ln.entries[:n+1]
		e := &ln.entries[n]
		e.tick, e.from, e.to, e.msg = tick, from, to, msg
	} else {
		ln.entries = append(ln.entries, wheelEntry{tick: tick, from: from, to: to, msg: msg})
	}
	for i := len(ln.entries) - 1; i > ln.head && ln.entries[i-1].tick > tick; i-- {
		ln.entries[i], ln.entries[i-1] = ln.entries[i-1], ln.entries[i]
	}
	ln.mu.Unlock()
	for {
		cur := b.minTick.Load()
		if tick >= cur || b.minTick.CompareAndSwap(cur, tick) {
			break
		}
	}
	for {
		cur := w.published.Load()
		if tick >= cur || w.published.CompareAndSwap(cur, tick) {
			break
		}
	}
}

// drainBucket releases every entry of b mature at nowTick. Because lanes
// are tick-sorted, the mature entries are exactly a prefix of each lane: a
// fully mature lane is handed off as its whole slab (O(1), no copying),
// and a partially mature one copies its prefix into the collector's
// scratch buffer — immature entries are never re-touched, which is what
// keeps a deeply backlogged wheel from re-partitioning its whole backlog
// every pass. All lane locks are held until the minTick store so a
// concurrent add cannot publish a lower minTick that the store would then
// clobber; emit runs after every lock is dropped, so a handler that sends
// again cannot deadlock against its own lane. Each emitted batch is valid
// only for the duration of the callback, and its slab is scrubbed and
// recycled immediately after, so a pass keeps at most one bucket's worth
// of segments alive — draining stays allocation-free at any backlog depth.
func (w *timingWheel) drainBucket(b *wheelBucket, nowTick int64, emit func([]wheelEntry)) {
	var fulls [wheelLanes]wheelSeg
	nFull := 0
	var spans [wheelLanes][2]int
	nSpan := 0
	w.scratch = w.scratch[:0]
	for i := range b.lanes {
		b.lanes[i].mu.Lock()
	}
	mt := int64(math.MaxInt64)
	for i := range b.lanes {
		ln := &b.lanes[i]
		n := len(ln.entries)
		if ln.head >= n {
			continue
		}
		if ln.entries[n-1].tick <= nowTick {
			// Whole lane mature: hand the slab to the scheduler.
			fulls[nFull] = wheelSeg{lane: ln, slab: ln.entries, start: ln.head}
			nFull++
			ln.entries, ln.head = nil, 0
			continue
		}
		k := ln.head
		for k < n && ln.entries[k].tick <= nowTick {
			k++
		}
		if k > ln.head {
			from := len(w.scratch)
			w.scratch = append(w.scratch, ln.entries[ln.head:k]...)
			for j := ln.head; j < k; j++ {
				ln.entries[j] = wheelEntry{} // do not pin released payloads
			}
			ln.head = k
			spans[nSpan] = [2]int{from, len(w.scratch)}
			nSpan++
		}
		if t := ln.entries[ln.head].tick; t < mt {
			mt = t
		}
	}
	b.minTick.Store(mt)
	for i := range b.lanes {
		b.lanes[i].mu.Unlock()
	}
	// One drainBucket call releases entries of a single tick (lanes hold at
	// most one in-threshold tick per bucket visit), so cross-lane emission
	// order cannot reorder any sender's stream.
	for i := 0; i < nFull; i++ {
		f := &fulls[i]
		emit(f.slab[f.start:])
		w.recycleSlab(f.lane, f.slab, f.start)
		fulls[i] = wheelSeg{}
	}
	for i := 0; i < nSpan; i++ {
		emit(w.scratch[spans[i][0]:spans[i][1]])
	}
	for j := range w.scratch {
		w.scratch[j] = wheelEntry{} // scrub scratch so it does not pin payloads
	}
}

// recycleSlab scrubs a consumed slab and parks it as its lane's spare for
// the next fill; a slab arriving while the spare slot is taken is left to
// the garbage collector.
func (w *timingWheel) recycleSlab(ln *wheelLane, slab []wheelEntry, start int) {
	for j := start; j < len(slab); j++ {
		slab[j] = wheelEntry{}
	}
	sl := slab[:0]
	ln.mu.Lock()
	if ln.spare == nil {
		ln.spare = sl
	}
	ln.mu.Unlock()
}

// collect releases every entry mature at now through emit, in ascending
// tick order (batched per lane), and returns the earliest still-pending
// tick (math.MaxInt64 if the wheel is empty). Only the scheduler calls
// collect. Emitted batches are valid only during the callback; a consumer
// that retains entries must copy them.
//
// The hot path — the scheduler lags by less than a rotation — walks each
// elapsed tick's bucket directly, locking only buckets whose ticks
// actually came due. When the gap reaches a full rotation, collect sweeps
// rotation-sized tick bands instead, each anchored at the earliest pending
// tick, ascending until nowTick is covered; band order equals tick order,
// so no pass ever needs a sort.
func (w *timingWheel) collect(now time.Time, emit func([]wheelEntry)) int64 {
	nowTick := now.UnixNano() >> w.tickShift
	earliest := w.published.Swap(math.MaxInt64)
	if w.lastNext < earliest {
		earliest = w.lastNext
	}
	for {
		// A sender stalled between reading the clock and publishing can
		// leave an entry at or before lastTick; restart the walk there.
		start := w.lastTick
		if earliest <= start {
			start = earliest - 1
		}
		if nowTick <= start {
			break
		}
		if nowTick-start < wheelBuckets {
			for t := start + 1; t <= nowTick; t++ {
				b := &w.buckets[t&(wheelBuckets-1)]
				if b.minTick.Load() <= nowTick {
					w.drainBucket(b, nowTick, emit)
				}
			}
			if nowTick > w.lastTick {
				w.lastTick = nowTick
			}
			break
		}
		if earliest > nowTick {
			// Nothing pending matures in the gap; jump the walk forward.
			w.lastTick = nowTick
			break
		}
		// Deep lag: drain one rotation-sized band [earliest, end]. Every
		// bucket maps to exactly one tick of the band, so scan order is
		// tick order; deeper entries wait for the next, higher band.
		end := earliest + wheelBuckets - 1
		if end > nowTick {
			end = nowTick
		}
		for i := int64(0); i < wheelBuckets; i++ {
			b := &w.buckets[(earliest+i)&(wheelBuckets-1)]
			if b.minTick.Load() <= end {
				w.drainBucket(b, end, emit)
			}
		}
		if end > w.lastTick {
			w.lastTick = end
		}
		if end == nowTick {
			break
		}
		earliest = math.MaxInt64
		for i := range w.buckets {
			if mt := w.buckets[i].minTick.Load(); mt < earliest {
				earliest = mt
			}
		}
	}
	next := int64(math.MaxInt64)
	for i := range w.buckets {
		if mt := w.buckets[i].minTick.Load(); mt < next {
			next = mt
		}
	}
	w.lastNext = next
	return next
}
