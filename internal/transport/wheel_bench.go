package transport

import (
	"math"
	"time"
)

// WheelSched is a thin exported handle over the timing wheel for the wire
// benchmarks in internal/experiment, which pit the wheel against a frozen
// copy of the seed's global-mutex heap scheduler. It exists only so the
// benchmark can drive the scheduling structure in isolation — production
// code goes through Mem, never this type.
type WheelSched struct {
	w *timingWheel
}

// NewWheelSched builds a wheel sized for the given latency, as NewMem does.
func NewWheelSched(latency time.Duration) *WheelSched {
	return &WheelSched{w: newTimingWheel(latency)}
}

// Add schedules one message, the send-path half of the structure. lane
// stands in for the sender's registration-assigned lane and must be stable
// per sender.
func (s *WheelSched) Add(deadline time.Time, lane int, from, to NodeID, msg Message) {
	s.w.add(deadline, lane, from, to, msg)
}

// Drain releases and discards every entry mature at now, returning the
// count and whether immature entries remain. Not safe for concurrent Drain
// calls; Add may race with it, as in Mem.
func (s *WheelSched) Drain(now time.Time) (released int, pending bool) {
	next := s.w.collect(now, func(entries []wheelEntry) { released += len(entries) })
	return released, next != math.MaxInt64
}
