package transport

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// wheelAt builds a deadline landing exactly on tick index tick of w.
func wheelAt(w *timingWheel, tick int64) time.Time {
	return time.Unix(0, tick*w.tickNs)
}

// collectAll copies every batch released at nowTick into one slice,
// preserving release order.
func collectAll(w *timingWheel, nowTick int64) []wheelEntry {
	var out []wheelEntry
	w.collect(time.Unix(0, nowTick*w.tickNs), func(entries []wheelEntry) {
		out = append(out, entries...)
	})
	return out
}

func TestWheelReleasesInTickOrder(t *testing.T) {
	w := newTimingWheel(64 * time.Microsecond) // tick = 1µs
	// Out-of-order adds across several ticks.
	for _, tick := range []int64{30, 10, 20, 10, 30, 20} {
		w.add(wheelAt(w, tick), 0, NodeID("s"), NodeID("r"), Message{Seq: uint64(tick)})
	}
	got := collectAll(w, 40)
	if len(got) != 6 {
		t.Fatalf("collected %d entries", len(got))
	}
	want := []uint64{10, 10, 20, 20, 30, 30}
	for i, e := range got {
		if e.msg.Seq != want[i] {
			t.Fatalf("entry %d matured with seq %d, want %d", i, e.msg.Seq, want[i])
		}
	}
}

// TestWheelWrapAroundOrdering forces a pass whose due ticks straddle the
// wheel's wrap point, where bucket-index order disagrees with tick order;
// collect must still release in tick order.
func TestWheelWrapAroundOrdering(t *testing.T) {
	w := newTimingWheel(64 * time.Microsecond)
	// Ticks just below and above a multiple of wheelBuckets: bucket indices
	// wrap (e.g. 254, 255, 0, 1), so index order would invert tick order.
	base := int64(wheelBuckets * 3)
	ticks := []int64{base - 2, base - 1, base, base + 1}
	for i, tick := range ticks {
		w.add(wheelAt(w, tick), 0, NodeID("s"), NodeID("r"), Message{Seq: uint64(i + 1)})
	}
	got := collectAll(w, base+10)
	if len(got) != len(ticks) {
		t.Fatalf("collected %d entries, want %d", len(got), len(ticks))
	}
	for i, e := range got {
		if e.msg.Seq != uint64(i+1) {
			t.Fatalf("wrap pass released seq %d at position %d", e.msg.Seq, i)
		}
	}
}

// TestWheelKeepsImmatureRotation checks the partition path: two entries a
// full rotation apart share a bucket, and only the mature one is released.
func TestWheelKeepsImmatureRotation(t *testing.T) {
	w := newTimingWheel(64 * time.Microsecond)
	near := int64(10)
	far := near + wheelBuckets // same bucket index, one rotation later
	w.add(wheelAt(w, near), 0, NodeID("s"), NodeID("r"), Message{Seq: 1})
	w.add(wheelAt(w, far), 0, NodeID("s"), NodeID("r"), Message{Seq: 2})

	var got []wheelEntry
	copyOut := func(entries []wheelEntry) { got = append(got, entries...) }
	next := w.collect(wheelAt(w, near+5), copyOut)
	if len(got) != 1 || got[0].msg.Seq != 1 {
		t.Fatalf("first pass released %d entries (%+v)", len(got), got)
	}
	if next != far {
		t.Fatalf("next pending tick %d, want %d", next, far)
	}
	got = got[:0]
	next = w.collect(wheelAt(w, far), copyOut)
	if len(got) != 1 || got[0].msg.Seq != 2 {
		t.Fatalf("second pass released %d entries", len(got))
	}
	if next != math.MaxInt64 {
		t.Fatalf("wheel not empty after final pass: next=%d", next)
	}
}

// TestWheelDeepLagReleasesInTickOrder covers the rare fallback: the
// collector lags by more than a full rotation, so one pass releases mature
// ticks over a rotation apart, which collect must sweep as ascending
// rotation-sized bands to keep tick order.
func TestWheelDeepLagReleasesInTickOrder(t *testing.T) {
	w := newTimingWheel(64 * time.Microsecond)
	// Ticks over a rotation apart: a single walk anchored anywhere would
	// visit 500's bucket before 10's; the band sweep must release 10 first.
	w.add(wheelAt(w, 500), 1, NodeID("a"), NodeID("r"), Message{Seq: 2})
	w.add(wheelAt(w, 10), 2, NodeID("b"), NodeID("r"), Message{Seq: 1})
	got := collectAll(w, 600)
	if len(got) != 2 {
		t.Fatalf("collected %d entries", len(got))
	}
	if got[0].msg.Seq != 1 || got[1].msg.Seq != 2 {
		t.Fatalf("deep-lag pass out of tick order: %d then %d", got[0].msg.Seq, got[1].msg.Seq)
	}
}

// TestWheelStragglerBehindLastTick models a sender that read the clock,
// stalled, and appended only after the collector's walk had passed its
// tick. The next pass must release it immediately (and before later
// ticks), not a rotation later.
func TestWheelStragglerBehindLastTick(t *testing.T) {
	w := newTimingWheel(64 * time.Microsecond)
	if got := collectAll(w, 50); len(got) != 0 { // advance lastTick to 50
		t.Fatalf("empty wheel released %d entries", len(got))
	}
	w.add(wheelAt(w, 10), 0, NodeID("s"), NodeID("r"), Message{Seq: 1}) // behind lastTick
	w.add(wheelAt(w, 55), 0, NodeID("s"), NodeID("r"), Message{Seq: 2})
	got := collectAll(w, 60)
	if len(got) != 2 {
		t.Fatalf("collected %d entries, want 2", len(got))
	}
	if got[0].msg.Seq != 1 || got[1].msg.Seq != 2 {
		t.Fatalf("straggler released out of order: seq %d then %d", got[0].msg.Seq, got[1].msg.Seq)
	}
}

func TestWheelNeverEarly(t *testing.T) {
	w := newTimingWheel(time.Millisecond)
	deadline := time.Now().Add(time.Millisecond)
	w.add(deadline, 0, NodeID("s"), NodeID("r"), Message{Seq: 1})
	matureAt := w.timeAt(w.tickFor(deadline))
	if matureAt.Before(deadline) {
		t.Fatalf("tick boundary %v before deadline %v", matureAt, deadline)
	}
	early := 0
	w.collect(deadline.Add(-time.Microsecond), func(entries []wheelEntry) { early += len(entries) })
	if early != 0 {
		t.Fatalf("entry released %d before its deadline", early)
	}
}

// TestWheelStressFIFO hammers the bare wheel: 8 senders adding as fast as
// they can while one collector drains, checking per-sender release order at
// the wheel layer (below Mem's mailboxes). Under -race the collector gets
// starved for whole rotations, which is what exercises the straggler
// restart and the catch-up path's anchored scan.
func TestWheelStressFIFO(t *testing.T) {
	w := newTimingWheel(300 * time.Microsecond)
	const senders = 8
	const per = 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := NodeID(fmt.Sprintf("src%d", s))
			for i := 1; i <= per; i++ {
				w.add(time.Now().Add(300*time.Microsecond), s, from, "dst", Message{Seq: uint64(i)})
			}
		}(s)
	}
	last := map[NodeID]uint64{}
	lastTicks := map[NodeID]int64{}
	total := 0
	check := func(entries []wheelEntry) {
		for _, e := range entries {
			if e.msg.Seq <= last[e.from] {
				t.Errorf("sender %s: seq %d (tick %d) after seq %d (tick %d)",
					e.from, e.msg.Seq, e.tick, last[e.from], lastTicks[e.from])
			}
			last[e.from] = e.msg.Seq
			lastTicks[e.from] = e.tick
			total++
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for total < senders*per {
		if time.Now().After(deadline) {
			t.Fatalf("released %d of %d", total, senders*per)
		}
		w.collect(time.Now(), check)
		time.Sleep(2 * time.Microsecond)
	}
	wg.Wait()
}

// TestLatencyFIFOManySenders is the per-pair FIFO contract under the
// timing wheel with concurrent senders, the workload the wheel shards.
// Run with -race in CI.
func TestLatencyFIFOManySenders(t *testing.T) {
	net := NewMem(MemConfig{Latency: 300 * time.Microsecond})
	defer net.Close()

	type rec struct {
		mu   sync.Mutex
		last map[NodeID]uint64
		n    int
	}
	r := rec{last: map[NodeID]uint64{}}
	if _, err := net.Register("dst", func(from NodeID, msg Message) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if msg.Seq <= r.last[from] {
			t.Errorf("sender %s: seq %d after %d", from, msg.Seq, r.last[from])
		}
		r.last[from] = msg.Seq
		r.n++
	}); err != nil {
		t.Fatal(err)
	}

	const senders = 8
	const perSender = 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := net.Register(NodeID(fmt.Sprintf("src%d", s)), func(NodeID, Message) {})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perSender; i++ {
				_ = ep.Send("dst", Message{Kind: KindAck, Seq: uint64(i)})
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		n := r.n
		r.mu.Unlock()
		if n == senders*perSender {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", n, senders*perSender)
		}
		time.Sleep(time.Millisecond)
	}
}
