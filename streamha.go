// Package streamha is a distributed stream processing runtime with
// pluggable high availability, reproducing "A Hybrid Approach to High
// Availability in Stream Processing Systems" (ICDCS 2010).
//
// A job is a chain of processing elements (PEs) partitioned into subjobs,
// each placed on a (simulated) cluster machine. Every subjob independently
// chooses one of five HA modes:
//
//   - None: a single copy, failures are endured.
//   - Active: active standby — two live copies, downstream deduplication,
//     roughly 4× the traffic and near-zero recovery delay.
//   - Passive: passive standby — sweeping checkpoints to a secondary
//     machine, on-demand redeployment after three heartbeat misses.
//   - Hybrid: the paper's contribution — passive-standby cost in normal
//     conditions (an in-memory-refreshed, pre-deployed but suspended
//     standby) with active-standby reactivity on failures (switchover on
//     the first heartbeat miss, rollback with state read-back once the
//     primary recovers, promotion if the failure turns out to be
//     fail-stop).
//   - Approx: the hybrid control plane with bounded-error recovery —
//     checkpoints ship only hot-slot partial snapshots and failover skips
//     output replay whenever the estimated loss fits an ErrorBudget,
//     trading a measured, budgeted divergence for lower steady-state cost
//     and immediate promotion.
//
// The package is a facade over the internal implementation: it re-exports
// the types needed to define custom PE logic, build clusters and
// pipelines, inject transient failures, and measure delay, traffic and
// recovery behavior. See the examples directory for runnable end-to-end
// programs and internal/experiment for the paper's full evaluation.
package streamha

import (
	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/element"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/machine"
	"streamha/internal/metrics"
	"streamha/internal/pe"
	"streamha/internal/sched"
	"streamha/internal/subjob"
)

// Core data-model types.
type (
	// Element is one unit of streaming data.
	Element = element.Element
	// Logic is the application-defined transformation of one PE; implement
	// it to write custom operators (see pe.CounterLogic for a template).
	Logic = pe.Logic
	// PESpec describes one PE of a subjob.
	PESpec = subjob.PESpec
)

// Cluster construction.
type (
	// Cluster owns the simulated machines and network of one deployment.
	Cluster = cluster.Cluster
	// ClusterConfig configures a cluster (network latency, clock).
	ClusterConfig = cluster.Config
	// Machine is one simulated cluster machine.
	Machine = machine.Machine
)

// Job deployment.
type (
	// Mode selects a subjob's high-availability scheme.
	Mode = ha.Mode
	// SubjobDef places one subjob and selects its HA mode.
	SubjobDef = ha.SubjobDef
	// SourceDef places and shapes the job's source.
	SourceDef = ha.SourceDef
	// PipelineConfig deploys a chain job.
	PipelineConfig = ha.PipelineConfig
	// Pipeline is a deployed chain job.
	Pipeline = ha.Pipeline
	// TopologyConfig deploys a DAG job (fan-out and fan-in subjobs).
	TopologyConfig = ha.TopologyConfig
	// Topology is a deployed DAG job.
	Topology = ha.Topology
	// TopologySource, TopologySubjob and TopologySink declare DAG nodes.
	TopologySource = ha.TopologySource
	TopologySubjob = ha.TopologySubjob
	TopologySink   = ha.TopologySink
	// Group is one deployed subjob with its HA apparatus.
	Group = ha.Group
	// HybridOptions tunes the hybrid method (intervals, costs, ablations).
	HybridOptions = core.Options
	// PassiveOptions tunes conventional passive standby.
	PassiveOptions = ha.PSOptions
	// ErrorBudget bounds the divergence an Approx-mode failover may admit
	// (max lost elements, max standby staleness).
	ErrorBudget = core.ErrorBudget
	// DivergenceStats reports the loss an Approx-mode policy actually
	// admitted across failovers, against its budget.
	DivergenceStats = core.DivergenceStats
	// RescalePlacement places the instance Pipeline.ScaleOut adds to a
	// keyed-parallel stage.
	RescalePlacement = ha.RescalePlacement
	// RescaleOptions tunes a live ScaleOut (sync rounds, drain timeout).
	RescaleOptions = ha.RescaleOptions
	// RescaleReport describes one completed live rescale.
	RescaleReport = ha.RescaleReport
)

// HA modes.
const (
	// None deploys a single unprotected copy.
	None = ha.ModeNone
	// Active runs two live copies (active standby).
	Active = ha.ModeActive
	// Passive checkpoints to a secondary and redeploys on demand.
	Passive = ha.ModePassive
	// Hybrid switches between passive and active standby on failure events.
	Hybrid = ha.ModeHybrid
	// Approx is hybrid with partial checkpoints and budgeted-loss failover.
	Approx = ha.ModeApprox
)

// Cluster scheduling: consensus-backed, fault-domain-aware placement.
type (
	// Scheduler resolves placement requests against live membership,
	// capacity and fault domains, backed by a replicated placement log.
	// Bind one to a cluster with Cluster.BindScheduler; pipelines whose
	// SubjobDefs name no machines then resolve placement through it, and
	// re-arm protection automatically after promotions and standby loss.
	Scheduler = sched.Scheduler
	// SchedulerConfig configures a scheduler (log replicas, timers).
	SchedulerConfig = sched.Config
	// PlacementRequest asks the scheduler for one machine, with optional
	// anti-affinity (machines and fault domains to avoid).
	PlacementRequest = sched.Request
	// RearmEvent records one scheduler-driven protection repair.
	RearmEvent = core.RearmEvent
)

// Failure injection.
type (
	// Injector drives transient CPU-load spikes on one machine.
	Injector = failure.Injector
	// InjectorConfig parameterizes an injector.
	InjectorConfig = failure.InjectorConfig
	// Spike is one ground-truth transient failure interval.
	Spike = failure.Spike
	// FailureScript is a parsed fail-stop trace ("0ms crash w1", ...).
	FailureScript = failure.Script
	// ScriptReplayer replays a FailureScript against a cluster.
	ScriptReplayer = failure.Replayer
)

// Arrival patterns for the failure injector.
const (
	// Regular spaces spikes deterministically.
	Regular = failure.Regular
	// Poisson draws exponential gaps and durations.
	Poisson = failure.Poisson
)

// Measurement.
type (
	// DelayStats accumulates per-element end-to-end delay samples.
	DelayStats = metrics.DelayStats
	// DelaySnapshot is a JSON-marshalable point-in-time view of a DelayStats.
	DelaySnapshot = metrics.DelaySnapshot
	// Registry aggregates named metric sources into one JSON-exportable
	// snapshot; fill it with Pipeline.RegisterMetrics.
	Registry = metrics.Registry
)

// Built-in synthetic logics, usable as templates for custom operators.
type (
	// CounterLogic is a stateful selectivity-1 PE with padded state.
	CounterLogic = pe.CounterLogic
	// FilterLogic drops elements by payload modulus.
	FilterLogic = pe.FilterLogic
	// SplitLogic emits several outputs per input.
	SplitLogic = pe.SplitLogic
	// WindowSumLogic aggregates tumbling windows.
	WindowSumLogic = pe.WindowSumLogic
)

// NewCluster creates a cluster of simulated machines. Add machines with
// MustAddMachine, then deploy jobs with NewPipeline.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// NewPipeline builds and wires a chain job across a cluster; call Start on
// the result to begin processing.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return ha.NewPipeline(cfg) }

// NewTopology builds and wires a DAG job — subjobs may fan out to several
// consumers and merge several producers, each with its own HA mode (the
// paper's evaluation is chains; trees are its stated future work).
func NewTopology(cfg TopologyConfig) (*Topology, error) { return ha.NewTopology(cfg) }

// NewInjector creates a transient-failure injector; call Start to begin
// injecting load spikes.
func NewInjector(cfg InjectorConfig) *Injector { return failure.NewInjector(cfg) }

// NewScheduler creates a cluster scheduler; call Start, then bind it with
// Cluster.BindScheduler so machines added afterwards become schedulable.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) { return sched.New(cfg) }

// ParseFailureScript parses a fail-stop trace, one "<offset> <action>
// <machine>" event per line (e.g. "2s crash w3").
var ParseFailureScript = failure.ParseScript

// NewScriptReplayer creates a replayer that applies a failure script's
// crash/recover events to a cluster on the script's schedule.
func NewScriptReplayer(cl *Cluster, s FailureScript) *ScriptReplayer {
	return failure.NewReplayer(cl.Clock(), cl, s)
}

// NewRegistry creates an empty metrics registry (the zero value also
// works); register a deployed pipeline with Pipeline.RegisterMetrics.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// GapForFraction returns the idle gap between spikes that makes transient
// failures present for the given fraction of time at the given duration.
var GapForFraction = failure.GapForFraction

// DeriveID deterministically derives the logical ID of the i-th output
// element produced from the input element with ID parent. Custom Logic
// implementations must use it so duplicate elimination works across
// replicas and recoveries.
var DeriveID = element.DeriveID
