package streamha_test

import (
	"testing"
	"time"

	"streamha"
)

// TestPublicAPIQuickstart exercises the full public surface the way the
// quickstart example does: build a cluster, deploy a hybrid pipeline with
// a custom logic, survive a transient failure, and verify delivery.
func TestPublicAPIQuickstart(t *testing.T) {
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 100 * time.Microsecond})
	for _, id := range []string{"src", "sink", "p0", "s0"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "t",
		Source:      streamha.SourceDef{Machine: "src", Rate: 1000},
		SinkMachine: "sink",
		Subjobs: []streamha.SubjobDef{{
			Mode:      streamha.Hybrid,
			Primary:   "p0",
			Secondary: "s0",
			PEs: []streamha.PESpec{{
				Name:     "count",
				NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 10} },
				Cost:     50 * time.Microsecond,
			}},
		}},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer pipe.Stop()

	time.Sleep(400 * time.Millisecond)
	cl.Machine("p0").CPU().SetBackgroundLoad(1)
	time.Sleep(300 * time.Millisecond)
	cl.Machine("p0").CPU().SetBackgroundLoad(0)
	time.Sleep(400 * time.Millisecond)
	pipe.Source().Stop()
	time.Sleep(300 * time.Millisecond)

	if pipe.Sink().Received() < 300 {
		t.Fatalf("delivered %d", pipe.Sink().Received())
	}
	for id, n := range pipe.Sink().IDCounts() {
		if n != 1 {
			t.Fatalf("element %d delivered %d times", id, n)
		}
	}
	if sw := pipe.Group(0).HA.Switches(); len(sw) == 0 {
		t.Fatal("no switchover during the stall")
	}
	_, gaps := pipe.Sink().In().Drops()
	if gaps != 0 {
		t.Fatalf("gaps %d", gaps)
	}
}

// TestPublicAPIInjector exercises the failure-injection surface.
func TestPublicAPIInjector(t *testing.T) {
	cl := streamha.NewCluster(streamha.ClusterConfig{})
	defer cl.Close()
	m := cl.MustAddMachine("m")
	inj := streamha.NewInjector(streamha.InjectorConfig{
		CPU:      m.CPU(),
		Clock:    cl.Clock(),
		Pattern:  streamha.Poisson,
		Gap:      streamha.GapForFraction(50*time.Millisecond, 0.5),
		Duration: 50 * time.Millisecond,
		LoadMin:  0.9,
		Seed:     3,
	})
	inj.Start()
	time.Sleep(300 * time.Millisecond)
	inj.Stop()
	if len(inj.Spikes()) == 0 {
		t.Fatal("no spikes injected")
	}
}

// TestDeriveIDExported checks the exported helper agrees with itself for
// custom-logic authors.
func TestDeriveIDExported(t *testing.T) {
	if streamha.DeriveID(7, 0) != 7 {
		t.Fatal("identity broken")
	}
	if streamha.DeriveID(7, 1) == streamha.DeriveID(7, 2) {
		t.Fatal("collision")
	}
}
